//! Seeded standard-normal sampling.
//!
//! `rand` ships uniform sampling only (the Gaussian distributions live in
//! `rand_distr`, which is outside the approved dependency set), so we
//! implement the Box–Muller transform on top of a seeded [`rand::Rng`].

use rand::Rng;

/// Standard-normal sampler with one cached spare variate (Box–Muller
/// produces pairs).
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        NormalSampler { spare: None }
    }

    /// Draws one `N(0, 1)` variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Box–Muller: u1 ∈ (0, 1] to keep ln(u1) finite.
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws one `N(mean, sd²)` variate.
    pub fn sample_with<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, sd: f64) -> f64 {
        mean + sd * self.sample(rng)
    }

    /// Fills a buffer with independent `N(0, 1)` variates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for v in out.iter_mut() {
            *v = self.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_approximately_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sampler = NormalSampler::new();
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = sampler.sample(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn sample_with_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sampler = NormalSampler::new();
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += sampler.sample_with(&mut rng, 5.0, 0.5);
        }
        assert!((sum / n as f64 - 5.0).abs() < 0.02);
    }

    #[test]
    fn deterministic_given_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = NormalSampler::new();
            (0..5).map(|_| s.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn fill_fills_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = NormalSampler::new();
        let mut buf = vec![0.0; 33];
        s.fill(&mut rng, &mut buf);
        // Probability of a genuine 0.0 draw is nil.
        assert!(buf.iter().all(|&v| v != 0.0 && v.is_finite()));
    }

    #[test]
    fn all_samples_finite() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut s = NormalSampler::new();
        for _ in 0..10_000 {
            assert!(s.sample(&mut rng).is_finite());
        }
    }
}
