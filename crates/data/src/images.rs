//! Simulated image datasets.
//!
//! MNIST, Fashion-MNIST, and CIFAR10 are unavailable offline, so each is
//! replaced with a seeded class-conditional generator whose *difficulty
//! ordering* mirrors the real datasets (MNIST easiest → CIFAR10 hardest).
//! Each class `c` has a fixed prototype vector; examples are
//! `prototype_c + within-class structured perturbation + isotropic noise`.
//! The within-class perturbation is a low-rank "style" term (a few shared
//! directions with per-example coefficients), which gives non-spherical
//! class clusters — the property that makes the utility matrix interesting
//! and ε-rank analysis non-trivial.
//!
//! The generators deliberately preserve the *interfaces* the experiments
//! need: 10 classes, configurable sample counts, deterministic seeds, and
//! enough class overlap that model choice matters (MLP beats logistic
//! regression on SimCifar, mirroring the paper's model ladder).

use crate::{Dataset, NormalSampler};
use fedval_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a simulated image dataset.
#[derive(Debug, Clone)]
pub struct SimImageConfig {
    /// Flattened "image" dimension.
    pub dim: usize,
    /// Number of classes (10 for all three stand-ins).
    pub num_classes: usize,
    /// Distance scale of class prototypes from the origin; larger separates
    /// classes more (easier task).
    pub prototype_scale: f64,
    /// Number of shared low-rank style directions.
    pub style_rank: usize,
    /// Standard deviation of the per-example style coefficients.
    pub style_sd: f64,
    /// Isotropic pixel-noise standard deviation.
    pub noise_sd: f64,
    /// Seed used to draw the prototypes and style directions (held fixed
    /// across calls so train and test share a distribution).
    pub seed: u64,
}

impl SimImageConfig {
    /// Simulated MNIST: well separated prototypes, mild style variation.
    pub fn mnist() -> Self {
        SimImageConfig {
            dim: 64,
            num_classes: 10,
            prototype_scale: 2.2,
            style_rank: 4,
            style_sd: 0.6,
            noise_sd: 0.5,
            seed: 0x5117_0001,
        }
    }

    /// Simulated Fashion-MNIST: closer prototypes, more style variation.
    pub fn fashion_mnist() -> Self {
        SimImageConfig {
            dim: 64,
            num_classes: 10,
            prototype_scale: 1.6,
            style_rank: 6,
            style_sd: 0.9,
            noise_sd: 0.6,
            seed: 0x5117_0002,
        }
    }

    /// Simulated CIFAR10: higher dimension (144 = 12×12, a perfect square so
    /// the CNN can treat examples as images), overlapping prototypes, strong
    /// style variation — the hardest of the three, as in the paper.
    pub fn cifar10() -> Self {
        SimImageConfig {
            dim: 144,
            num_classes: 10,
            prototype_scale: 1.1,
            style_rank: 10,
            style_sd: 1.2,
            noise_sd: 0.7,
            seed: 0x5117_0003,
        }
    }
}

/// A simulated image-classification source that can draw arbitrarily many
/// labelled examples from a fixed class-conditional distribution.
#[derive(Debug, Clone)]
pub struct SimImageSource {
    config: SimImageConfig,
    prototypes: Matrix,
    styles: Matrix,
}

/// Simulated MNIST source.
pub type SimMnist = SimImageSource;
/// Simulated Fashion-MNIST source (alias; construct with
/// [`SimImageSource::new`] and [`SimImageConfig::fashion_mnist`]).
pub type SimFashionMnist = SimImageSource;
/// Simulated CIFAR10 source (alias; construct with
/// [`SimImageSource::new`] and [`SimImageConfig::cifar10`]).
pub type SimCifar10 = SimImageSource;

impl SimImageSource {
    /// Builds the fixed class prototypes and style directions for `config`.
    pub fn new(config: SimImageConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut normal = NormalSampler::new();
        let mut prototypes = Matrix::zeros(config.num_classes, config.dim);
        for v in prototypes.as_mut_slice() {
            *v = normal.sample(&mut rng) * config.prototype_scale;
        }
        let mut styles = Matrix::zeros(config.style_rank, config.dim);
        for v in styles.as_mut_slice() {
            *v = normal.sample(&mut rng) / (config.dim as f64).sqrt();
        }
        SimImageSource {
            config,
            prototypes,
            styles,
        }
    }

    /// The configuration this source was built from.
    pub fn config(&self) -> &SimImageConfig {
        &self.config
    }

    /// Draws `n` examples with uniformly random labels.
    pub fn sample(&self, n: usize, seed: u64) -> Dataset {
        let labels: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
            (0..n)
                .map(|_| rng.random_range(0..self.config.num_classes))
                .collect()
        };
        self.sample_with_labels(&labels, seed)
    }

    /// Draws one example per entry of `labels`, with the given classes.
    /// Used by the non-IID sharding partitioner to control class mixtures.
    pub fn sample_with_labels(&self, labels: &[usize], seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut normal = NormalSampler::new();
        let d = self.config.dim;
        let r = self.config.style_rank;
        let mut feat = Matrix::zeros(labels.len(), d);
        let mut coeffs = vec![0.0; r];
        for (i, &label) in labels.iter().enumerate() {
            assert!(label < self.config.num_classes, "label out of range");
            for c in &mut coeffs {
                *c = normal.sample_with(&mut rng, 0.0, self.config.style_sd);
            }
            let row = feat.row_mut(i);
            let proto = self.prototypes.row(label);
            for j in 0..d {
                let mut v = proto[j];
                for (k, &c) in coeffs.iter().enumerate() {
                    v += c * self.styles.get(k, j);
                }
                v += normal.sample_with(&mut rng, 0.0, self.config.noise_sd);
                row[j] = v;
            }
        }
        Dataset::new(feat, labels.to_vec(), self.config.num_classes)
            .expect("labels validated above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_linalg::vector;

    #[test]
    fn sample_shapes_match_config() {
        let src = SimImageSource::new(SimImageConfig::mnist());
        let ds = src.sample(37, 1);
        assert_eq!(ds.len(), 37);
        assert_eq!(ds.dim(), 64);
        assert_eq!(ds.num_classes(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let src = SimImageSource::new(SimImageConfig::fashion_mnist());
        let a = src.sample(10, 5);
        let b = src.sample(10, 5);
        assert_eq!(a.features().as_slice(), b.features().as_slice());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_give_different_examples() {
        let src = SimImageSource::new(SimImageConfig::mnist());
        let a = src.sample(10, 1);
        let b = src.sample(10, 2);
        assert_ne!(a.features().as_slice(), b.features().as_slice());
    }

    #[test]
    fn sample_with_labels_respects_labels() {
        let src = SimImageSource::new(SimImageConfig::cifar10());
        let labels = vec![3usize; 20];
        let ds = src.sample_with_labels(&labels, 8);
        assert!(ds.labels().iter().all(|&l| l == 3));
    }

    #[test]
    fn class_means_cluster_around_prototypes() {
        // The empirical mean of many same-class examples must be far closer
        // to its own prototype than to any other class's prototype.
        let src = SimImageSource::new(SimImageConfig::mnist());
        let n = 300;
        for class in [0usize, 7] {
            let ds = src.sample_with_labels(&vec![class; n], 99 + class as u64);
            let d = ds.dim();
            let mut mean = vec![0.0; d];
            for i in 0..n {
                vector::axpy(1.0 / n as f64, ds.example(i).0, &mut mean);
            }
            let mut best = usize::MAX;
            let mut best_dist = f64::INFINITY;
            for c in 0..10 {
                let dist = vector::dist2(&mean, src.prototypes.row(c));
                if dist < best_dist {
                    best_dist = dist;
                    best = c;
                }
            }
            assert_eq!(best, class);
        }
    }

    #[test]
    fn cifar_is_noisier_than_mnist() {
        // Ratio of within-class spread to prototype separation should be
        // larger for SimCifar (harder task).
        let spread_ratio = |cfg: SimImageConfig| {
            let src = SimImageSource::new(cfg);
            let ds = src.sample_with_labels(&vec![0; 200], 4);
            let d = ds.dim();
            let mut mean = vec![0.0; d];
            for i in 0..200 {
                vector::axpy(1.0 / 200.0, ds.example(i).0, &mut mean);
            }
            let within: f64 = (0..200)
                .map(|i| vector::dist2(ds.example(i).0, &mean))
                .sum::<f64>()
                / 200.0;
            let between = vector::dist2(src.prototypes.row(0), src.prototypes.row(1));
            within / between
        };
        assert!(spread_ratio(SimImageConfig::cifar10()) > spread_ratio(SimImageConfig::mnist()));
    }

    #[test]
    fn uniform_label_sampling_covers_all_classes() {
        let src = SimImageSource::new(SimImageConfig::mnist());
        let ds = src.sample(500, 3);
        let counts = ds.class_counts();
        assert!(counts.iter().all(|&c| c > 10), "counts {counts:?}");
    }
}
