//! FedProx-style `synthetic(α, β)` federated data generator.
//!
//! Following Li et al., "Federated Optimization in Heterogeneous Networks"
//! (the setup the paper cites for its synthetic experiments):
//!
//! * per-client model: `W_k ∈ R^{C×d}, b_k ∈ R^C` with entries
//!   `N(u_k, 1)`, `u_k ~ N(0, α)` — `α` controls how much local *models*
//!   differ across clients;
//! * per-client inputs: `x ~ N(v_k, Σ)` with `Σ = diag(j^{-1.2})` and
//!   `v_k ~ N(B_k, 1)`, `B_k ~ N(0, β)` — `β` controls how much local
//!   *data* differs;
//! * labels: `y = argmax softmax(W_k x + b_k)`.
//!
//! `α = β = 0` is the IID configuration used in the paper, `α = β = 1` the
//! non-IID one.

use crate::{Dataset, NormalSampler};
use fedval_linalg::{vector, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`SyntheticFederated`].
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Model-heterogeneity parameter (paper: 0 for IID, 1 for non-IID).
    pub alpha: f64,
    /// Data-heterogeneity parameter (paper: 0 for IID, 1 for non-IID).
    pub beta: f64,
    /// Number of clients.
    pub num_clients: usize,
    /// Examples per client.
    pub samples_per_client: usize,
    /// Input dimension (FedProx uses 60).
    pub dim: usize,
    /// Number of classes (FedProx uses 10).
    pub num_classes: usize,
    /// Number of held-out test examples (drawn from the global mixture).
    pub test_samples: usize,
    /// Scale applied to the per-client feature centers `v_k` when drawing
    /// `x ~ N(center_scale · v_k, Σ)`.
    ///
    /// FedProx's verbatim generator (`center_scale = 1`) produces feature
    /// means whose norm (≈ √d) dwarfs the per-sample spread, so `argmax`
    /// labels collapse onto 2–4 classes. A moderate scale keeps the
    /// heterogeneity mechanism while producing a balanced, learnable
    /// multi-class task (see DESIGN.md, Substitutions).
    pub center_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            alpha: 0.0,
            beta: 0.0,
            num_clients: 10,
            samples_per_client: 200,
            dim: 60,
            num_classes: 10,
            test_samples: 1000,
            center_scale: 0.3,
            seed: 0,
        }
    }
}

impl SyntheticConfig {
    /// The paper's IID setting `α = β = 0`.
    pub fn iid() -> Self {
        SyntheticConfig::default()
    }

    /// The paper's non-IID setting `α = β = 1`.
    pub fn non_iid() -> Self {
        SyntheticConfig {
            alpha: 1.0,
            beta: 1.0,
            ..SyntheticConfig::default()
        }
    }
}

/// A generated federated synthetic task: one dataset per client plus a
/// central test set.
#[derive(Debug, Clone)]
pub struct SyntheticFederated {
    /// Per-client training datasets.
    pub client_data: Vec<Dataset>,
    /// Central (server-held) test dataset.
    pub test_data: Dataset,
}

impl SyntheticFederated {
    /// Generates the task described by `config`.
    pub fn generate(config: &SyntheticConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut normal = NormalSampler::new();
        let d = config.dim;
        let c = config.num_classes;

        // Diagonal covariance Σ_jj = j^{-1.2} (1-based j), shared globally.
        let sigma_diag: Vec<f64> = (1..=d).map(|j| (j as f64).powf(-1.2).sqrt()).collect();

        // FedProx's IID special case: with α = 0 every client shares one
        // labeling model (W, b); with β = 0 every client shares one feature
        // center. Sampling per-client models at α = 0 would leave each
        // client with its own random labeling function — maximally
        // heterogeneous, the opposite of IID.
        let shared_model: Option<(Matrix, Vec<f64>)> = (config.alpha == 0.0).then(|| {
            let mut w = Matrix::zeros(c, d);
            for v in w.as_mut_slice() {
                *v = normal.sample(&mut rng);
            }
            let mut b = vec![0.0; c];
            for v in &mut b {
                *v = normal.sample(&mut rng);
            }
            (w, b)
        });
        let shared_center: Option<Vec<f64>> = (config.beta == 0.0).then(|| {
            let mut v_shared = vec![0.0; d];
            for v in &mut v_shared {
                *v = normal.sample(&mut rng);
            }
            v_shared
        });

        let mut client_data = Vec::with_capacity(config.num_clients);
        let mut all_models = Vec::with_capacity(config.num_clients);
        let mut all_centers = Vec::with_capacity(config.num_clients);
        for _ in 0..config.num_clients {
            // Model heterogeneity.
            let (w_k, b_k) = if let Some((w, b)) = &shared_model {
                (w.clone(), b.clone())
            } else {
                let u_k = normal.sample_with(&mut rng, 0.0, config.alpha.sqrt());
                let mut w_k = Matrix::zeros(c, d);
                for v in w_k.as_mut_slice() {
                    *v = normal.sample_with(&mut rng, u_k, 1.0);
                }
                let mut b_k = vec![0.0; c];
                for v in &mut b_k {
                    *v = normal.sample_with(&mut rng, u_k, 1.0);
                }
                (w_k, b_k)
            };
            // Data heterogeneity.
            let v_k = if let Some(v_shared) = &shared_center {
                v_shared.clone()
            } else {
                let big_b = normal.sample_with(&mut rng, 0.0, config.beta.sqrt());
                let mut v_k = vec![0.0; d];
                for v in &mut v_k {
                    *v = normal.sample_with(&mut rng, big_b, 1.0);
                }
                v_k
            };
            let ds = sample_client(
                &mut rng,
                &mut normal,
                &w_k,
                &b_k,
                &v_k,
                config.center_scale,
                &sigma_diag,
                config.samples_per_client,
                c,
            );
            client_data.push(ds);
            all_models.push((w_k, b_k));
            all_centers.push(v_k);
        }

        // Test data: a balanced mixture over the clients' distributions so
        // the server's utility function reflects the global task.
        let per_client = config.test_samples.div_ceil(config.num_clients.max(1));
        let mut parts = Vec::with_capacity(config.num_clients);
        for ((w_k, b_k), v_k) in all_models.iter().zip(&all_centers) {
            parts.push(sample_client(
                &mut rng,
                &mut normal,
                w_k,
                b_k,
                v_k,
                config.center_scale,
                &sigma_diag,
                per_client,
                c,
            ));
        }
        let refs: Vec<&Dataset> = parts.iter().collect();
        let mut test_data = Dataset::concat(&refs).expect("schema is uniform");
        if test_data.len() > config.test_samples {
            let keep: Vec<usize> = (0..config.test_samples).collect();
            test_data = test_data.subset(&keep);
        }

        SyntheticFederated {
            client_data,
            test_data,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn sample_client(
    rng: &mut StdRng,
    normal: &mut NormalSampler,
    w: &Matrix,
    b: &[f64],
    center: &[f64],
    center_scale: f64,
    sigma_diag: &[f64],
    n: usize,
    num_classes: usize,
) -> Dataset {
    let d = center.len();
    let mut feat = Matrix::zeros(n, d);
    let mut labels = Vec::with_capacity(n);
    let mut logits = vec![0.0; num_classes];
    for i in 0..n {
        {
            let row = feat.row_mut(i);
            for (j, r) in row.iter_mut().enumerate() {
                *r = normal.sample_with(rng, center_scale * center[j], sigma_diag[j]);
            }
        }
        let row = feat.row(i);
        for (cidx, l) in logits.iter_mut().enumerate() {
            *l = vector::dot(w.row(cidx), row) + b[cidx];
        }
        labels.push(vector::argmax(&logits));
    }
    Dataset::new(feat, labels, num_classes).expect("generated labels are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(alpha: f64, beta: f64, seed: u64) -> SyntheticConfig {
        SyntheticConfig {
            alpha,
            beta,
            num_clients: 4,
            samples_per_client: 50,
            dim: 10,
            num_classes: 5,
            test_samples: 40,
            center_scale: 0.3,
            seed,
        }
    }

    #[test]
    fn generates_requested_shapes() {
        let fed = SyntheticFederated::generate(&small_config(0.0, 0.0, 1));
        assert_eq!(fed.client_data.len(), 4);
        for c in &fed.client_data {
            assert_eq!(c.len(), 50);
            assert_eq!(c.dim(), 10);
            assert_eq!(c.num_classes(), 5);
        }
        assert_eq!(fed.test_data.len(), 40);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticFederated::generate(&small_config(1.0, 1.0, 9));
        let b = SyntheticFederated::generate(&small_config(1.0, 1.0, 9));
        assert_eq!(
            a.client_data[0].features().as_slice(),
            b.client_data[0].features().as_slice()
        );
        assert_eq!(a.client_data[2].labels(), b.client_data[2].labels());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticFederated::generate(&small_config(1.0, 1.0, 1));
        let b = SyntheticFederated::generate(&small_config(1.0, 1.0, 2));
        assert_ne!(
            a.client_data[0].features().as_slice(),
            b.client_data[0].features().as_slice()
        );
    }

    #[test]
    fn labels_cover_multiple_classes() {
        let fed = SyntheticFederated::generate(&small_config(0.0, 0.0, 3));
        let all: std::collections::HashSet<usize> = fed
            .client_data
            .iter()
            .flat_map(|c| c.labels().iter().copied())
            .collect();
        assert!(all.len() >= 2, "expected class diversity, got {all:?}");
    }

    #[test]
    fn heterogeneity_increases_client_center_spread() {
        // With β = 0 all clients share the feature center; with β large the
        // per-client feature means drift apart.
        let measure_spread = |beta: f64| {
            let fed = SyntheticFederated::generate(&small_config(0.0, beta, 5));
            let means: Vec<f64> = fed
                .client_data
                .iter()
                .map(|c| {
                    let m = c.features();
                    m.as_slice().iter().sum::<f64>() / m.as_slice().len() as f64
                })
                .collect();
            let grand = means.iter().sum::<f64>() / means.len() as f64;
            means.iter().map(|m| (m - grand).powi(2)).sum::<f64>()
        };
        assert!(measure_spread(25.0) > measure_spread(0.0));
    }

    #[test]
    fn all_features_finite() {
        let fed = SyntheticFederated::generate(&small_config(1.0, 1.0, 7));
        for c in &fed.client_data {
            assert!(c.features().is_finite());
        }
        assert!(fed.test_data.features().is_finite());
    }
}
