//! Noise injection for the data-quality experiments.
//!
//! * [`add_feature_noise`] — adds Gaussian noise to a fraction of a
//!   client's examples (paper Fig. 6: client `i` gets noise on `5·i%` of
//!   its data).
//! * [`flip_labels`] — randomly flips a fraction of labels to a different
//!   class (paper Fig. 7: 10 of 100 clients with 30% flipped labels).

use crate::{Dataset, NormalSampler};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Adds `N(0, sd²)` noise to every feature of a `fraction` of the examples
/// (chosen uniformly without replacement). Returns the indices perturbed.
pub fn add_feature_noise(data: &mut Dataset, fraction: f64, sd: f64, seed: u64) -> Vec<usize> {
    let fraction = fraction.clamp(0.0, 1.0);
    let n = data.len();
    let count = ((n as f64) * fraction).round() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    order.truncate(count);
    let mut normal = NormalSampler::new();
    for &i in &order {
        let row = data.features_mut().row_mut(i);
        for v in row.iter_mut() {
            *v += normal.sample_with(&mut rng, 0.0, sd);
        }
    }
    order
}

/// Flips the labels of a `fraction` of the examples to a uniformly random
/// *different* class. Returns the indices flipped.
pub fn flip_labels(data: &mut Dataset, fraction: f64, seed: u64) -> Vec<usize> {
    let fraction = fraction.clamp(0.0, 1.0);
    let n = data.len();
    let c = data.num_classes();
    if c < 2 {
        return Vec::new();
    }
    let count = ((n as f64) * fraction).round() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    order.truncate(count);
    for &i in &order {
        let old = data.labels()[i];
        let mut new = rng.random_range(0..c - 1);
        if new >= old {
            new += 1;
        }
        data.labels_mut()[i] = new;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_linalg::Matrix;

    fn dataset(n: usize) -> Dataset {
        let feat = Matrix::from_fn(n, 4, |i, j| (i + j) as f64);
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        Dataset::new(feat, labels, 3).unwrap()
    }

    #[test]
    fn feature_noise_perturbs_expected_count() {
        let mut d = dataset(100);
        let before = d.features().as_slice().to_vec();
        let touched = add_feature_noise(&mut d, 0.25, 1.0, 1);
        assert_eq!(touched.len(), 25);
        let changed_rows: Vec<usize> = (0..100)
            .filter(|&i| d.features().row(i) != &before[i * 4..(i + 1) * 4])
            .collect();
        assert_eq!(changed_rows.len(), 25);
        let mut t = touched.clone();
        t.sort_unstable();
        assert_eq!(t, changed_rows);
    }

    #[test]
    fn feature_noise_zero_fraction_is_noop() {
        let mut d = dataset(10);
        let before = d.features().as_slice().to_vec();
        let touched = add_feature_noise(&mut d, 0.0, 1.0, 1);
        assert!(touched.is_empty());
        assert_eq!(d.features().as_slice(), &before[..]);
    }

    #[test]
    fn feature_noise_full_fraction_touches_everything() {
        let mut d = dataset(10);
        let touched = add_feature_noise(&mut d, 1.0, 1.0, 1);
        assert_eq!(touched.len(), 10);
    }

    #[test]
    fn feature_noise_does_not_touch_labels() {
        let mut d = dataset(30);
        let labels = d.labels().to_vec();
        add_feature_noise(&mut d, 0.5, 2.0, 5);
        assert_eq!(d.labels(), &labels[..]);
    }

    #[test]
    fn flip_labels_flips_expected_count_to_different_classes() {
        let mut d = dataset(100);
        let before = d.labels().to_vec();
        let flipped = flip_labels(&mut d, 0.3, 2);
        assert_eq!(flipped.len(), 30);
        for &i in &flipped {
            assert_ne!(d.labels()[i], before[i], "label {i} must change");
            assert!(d.labels()[i] < 3);
        }
        // Untouched labels unchanged.
        let flipped_set: std::collections::HashSet<_> = flipped.iter().collect();
        for i in 0..100 {
            if !flipped_set.contains(&i) {
                assert_eq!(d.labels()[i], before[i]);
            }
        }
    }

    #[test]
    fn flip_labels_binary_always_flips_to_other() {
        let feat = Matrix::zeros(20, 2);
        let mut d = Dataset::new(feat, vec![0; 20], 2).unwrap();
        flip_labels(&mut d, 1.0, 3);
        assert!(d.labels().iter().all(|&l| l == 1));
    }

    #[test]
    fn flip_labels_single_class_is_noop() {
        let feat = Matrix::zeros(5, 2);
        let mut d = Dataset::new(feat, vec![0; 5], 1).unwrap();
        assert!(flip_labels(&mut d, 1.0, 1).is_empty());
        assert!(d.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn noise_is_deterministic_given_seed() {
        let mut a = dataset(50);
        let mut b = dataset(50);
        add_feature_noise(&mut a, 0.4, 1.5, 9);
        add_feature_noise(&mut b, 0.4, 1.5, 9);
        assert_eq!(a.features().as_slice(), b.features().as_slice());
    }
}
