//! Dataset substrate for the ComFedSV reproduction.
//!
//! The paper evaluates on synthetic data (the FedProx `synthetic(α, β)`
//! generator) plus MNIST, Fashion-MNIST, and CIFAR10. The image datasets are
//! not available offline, so this crate provides *simulated* stand-ins —
//! seeded class-conditional generators that preserve everything the
//! experiments actually exercise: multi-class structure, per-client
//! heterogeneity, controllable feature/label noise, and IID / non-IID
//! partitioning. See `DESIGN.md` ("Substitutions") for the full rationale.
//!
//! * [`dataset`] — the in-memory [`Dataset`] container and train/test splits.
//! * [`synthetic`] — FedProx-style `synthetic(α, β)` federated generator.
//! * [`images`] — simulated MNIST / Fashion-MNIST / CIFAR10 generators.
//! * [`partition`] — IID and label-sharding (non-IID) partitioners, and the
//!   duplicate-client helper used by the fairness experiments.
//! * [`noise`] — Gaussian feature noise and label flipping.
//! * [`behavior`] — data-level client-quality interventions (per-client
//!   label corruption) for the robustness scenario worlds.
//! * [`randn`] — seeded standard-normal sampling (Box–Muller over `rand`).

// Index-driven loops are deliberate in the numeric kernels: the loop
// variable simultaneously drives several arrays/offsets and mirrors the
// textbook formulas, which iterator chains would obscure.
#![allow(clippy::needless_range_loop)]

pub mod behavior;
pub mod dataset;
pub mod images;
pub mod noise;
pub mod partition;
pub mod randn;
pub mod synthetic;

pub use behavior::{apply_label_corruption, LabelCorruption};
pub use dataset::Dataset;
pub use images::{SimCifar10, SimFashionMnist, SimImageConfig, SimMnist};
pub use noise::{add_feature_noise, flip_labels};
pub use partition::{
    duplicate_client, partition_dirichlet, partition_iid, partition_shards, DirichletSkew,
};
pub use randn::NormalSampler;
pub use synthetic::{SyntheticConfig, SyntheticFederated};
