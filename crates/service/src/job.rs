//! The job layer: specs, lifecycle state, and the [`JobManager`] that
//! multiplexes concurrent valuation jobs onto one worker pool.
//!
//! Each submitted [`JobSpec`] becomes a [`Job`] running on its own
//! manager thread: the thread materializes the scenario world, trains
//! the federated trace (cancellably — a `DELETE` during training stops
//! at the next round boundary), and drives a [`ValuationSession`]
//! against a per-job [`UtilityOracle`]. Jobs
//! share *compute* (the pool) and *read-only derived state* — the
//! manager memoizes each `(scenario, seed)` world + trained trace, and
//! every oracle attaches to one process-shared
//! [`CellCache`] so a utility cell any job
//! evaluated is free for all later jobs — but never mutable state:
//! each job keeps its own RNG seeding and cancel token, and cache
//! sharing is invisible in result bytes (cells are pure functions of
//! the fingerprinted trace). The whole run is wrapped in
//! [`with_job_class`], so every pool submission the valuation stack
//! makes — oracle batches, completion solves, nested training scopes —
//! inherits the job's priority class and lands in that class's queues
//! under fair-share scheduling.
//!
//! Because work placement never affects results (the `fedval_runtime`
//! determinism contract), a job's report is bit-identical whether it
//! ran alone or interleaved with any number of concurrent jobs — the
//! service's core correctness property, asserted in this crate's
//! `concurrency` test.

use comfedsv::experiments::{Scenario, World};
use fedval_cache::{
    CacheStats, CellCache, Fingerprint, FingerprintHasher, TraceLoad, TraceRecord, TraceRound,
};
use fedval_fl::trainer::RoundRecord;
use fedval_fl::{ClientBehavior, Subset, TrainingTrace, UtilityOracle};
use fedval_linalg::DeterminismTier;
use fedval_runtime::{with_job_class, CancelToken, Cancelled, JobClass, PoolHandle};
use fedval_shapley::{ValuationError, ValuationReport, ValuationSession};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What to value and how, as submitted by a client.
///
/// `method` keys the [`ValuationSession`] registry; `scenario` keys
/// [`Scenario::catalog`]. The optional overrides reshape the scenario's
/// world (clients, data sizes, training length) without defining new
/// scenarios; method hyper-parameters mirror the session builder's.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Registry key: "exact", "fedsv", "comfedsv", "tmc", ….
    pub method: String,
    /// Catalog scenario the world is built from.
    pub scenario: String,
    /// Seed for world generation, training, and valuation.
    pub seed: u64,
    /// Numeric tier override (`None`: the oracle's default tier).
    pub tier: Option<DeterminismTier>,
    /// Scheduling class of every pool submission this job makes.
    pub class: JobClass,
    /// Completion rank for the ComFedSV methods.
    pub rank: usize,
    /// Permutation budget for "comfedsv-mc" and "tmc".
    pub permutations: usize,
    /// Coalition-sample budget for "group-testing".
    pub samples: usize,
    /// Override: number of clients in the world.
    pub num_clients: Option<usize>,
    /// Override: training examples per client.
    pub samples_per_client: Option<usize>,
    /// Override: FedAvg rounds.
    pub rounds: Option<usize>,
    /// Override: clients selected per round.
    pub clients_per_round: Option<usize>,
    /// Wall-clock deadline in milliseconds. A job still running when it
    /// expires is stopped at its next cancellation checkpoint and fails
    /// with [`ValuationError::Deadline`]'s message (`None`: no limit).
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A spec for `method` with the service defaults: "iid_baseline",
    /// seed 0, batch class, rank 4, 80 permutations, 200 samples, no
    /// world overrides.
    pub fn new(method: impl Into<String>) -> Self {
        JobSpec {
            method: method.into(),
            scenario: "iid_baseline".into(),
            seed: 0,
            tier: None,
            class: JobClass::Batch,
            rank: 4,
            permutations: 80,
            samples: 200,
            num_clients: None,
            samples_per_client: None,
            rounds: None,
            clients_per_round: None,
            deadline_ms: None,
        }
    }

    /// The scenario with this spec's world overrides applied, or `None`
    /// for an unknown scenario name. Behavior vectors are resized along
    /// with `num_clients` (added clients are honest), and
    /// `clients_per_round` is clamped to the client count.
    pub fn resolve_scenario(&self) -> Option<Scenario> {
        let mut scenario = Scenario::by_name(&self.scenario)?;
        if let Some(n) = self.num_clients {
            scenario.num_clients = n;
            scenario.behaviors.resize(n, ClientBehavior::Honest);
        }
        if let Some(n) = self.samples_per_client {
            scenario.samples_per_client = n;
        }
        if let Some(n) = self.rounds {
            scenario.rounds = n;
        }
        if let Some(n) = self.clients_per_round {
            scenario.clients_per_round = n;
        }
        scenario.clients_per_round = scenario.clients_per_round.min(scenario.num_clients).max(1);
        Some(scenario)
    }
}

/// Lifecycle of a [`Job`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted; the job thread has not started valuing yet.
    Queued,
    /// World building, training, or valuation in progress.
    Running,
    /// Finished with a report.
    Done,
    /// Stopped by [`JobManager::cancel`] (or a pre-cancelled token).
    Cancelled,
    /// Finished with an error (bad method for the oracle, panic, …).
    Failed,
}

impl JobStatus {
    /// Stable lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed => "failed",
        }
    }

    /// Whether the job has stopped (successfully or not).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Cancelled | JobStatus::Failed
        )
    }
}

/// How a job's oracle interacted with the shared cell-cache tier,
/// captured when the job finishes and echoed in its status document.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobCacheInfo {
    /// Whether the trained world/trace came from the manager's memo
    /// (true: this job skipped world building and training entirely).
    pub world_reused: bool,
    /// Planned utility cells served from the shared cache without a
    /// loss evaluation.
    pub cell_hits: u64,
    /// Loss evaluations this job actually performed.
    pub cells_computed: u64,
    /// Cells found already persisted on disk when the oracle attached
    /// (0 without a `FEDVAL_CACHE_DIR`-backed cache).
    pub disk_warm_cells: u64,
    /// Whether the shared cache's disk tier was degraded (unusable or
    /// abandoned after repeated write failures) when this job finished
    /// — the job still completed, served from memory.
    pub cache_degraded: bool,
}

/// Mutable run state guarded by the job's mutex.
struct JobState {
    status: JobStatus,
    report: Option<ValuationReport>,
    error: Option<String>,
    cache: Option<JobCacheInfo>,
    started: Option<Instant>,
    finished: Option<Instant>,
}

/// Append-only log of line-delimited JSON event strings, with a
/// condition variable so streamers can block for new entries.
struct EventLog {
    entries: Mutex<Vec<String>>,
    appended: Condvar,
}

impl EventLog {
    fn push(&self, line: String) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.push(line);
        drop(entries);
        self.appended.notify_all();
    }
}

/// One submitted valuation job. Obtained from [`JobManager::submit`] /
/// [`JobManager::get`]; shared between the job thread, the HTTP layer,
/// and event streamers.
pub struct Job {
    id: u64,
    spec: JobSpec,
    cancel: CancelToken,
    submitted: Instant,
    state: Mutex<JobState>,
    state_changed: Condvar,
    events: EventLog,
    /// Set by the deadline watcher before it cancels: distinguishes a
    /// deadline stop (→ `Failed`) from a client cancel (→ `Cancelled`).
    deadline_fired: AtomicBool,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("method", &self.spec.method)
            .field("status", &self.status())
            .finish_non_exhaustive()
    }
}

impl Job {
    /// The manager-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The spec this job was submitted with.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Current lifecycle status.
    pub fn status(&self) -> JobStatus {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).status
    }

    /// The finished report, when [`JobStatus::Done`].
    pub fn report(&self) -> Option<ValuationReport> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .report
            .clone()
    }

    /// The failure message, when [`JobStatus::Failed`].
    pub fn error(&self) -> Option<String> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .error
            .clone()
    }

    /// Shared-cache accounting for this job, filled in when the job's
    /// valuation finishes (`None` while queued/training, or when the
    /// job never reached the oracle).
    pub fn cache_info(&self) -> Option<JobCacheInfo> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).cache
    }

    fn set_cache_info(&self, info: JobCacheInfo) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).cache = Some(info);
    }

    /// Milliseconds from submission until the job thread started
    /// valuing (so far, if still queued).
    pub fn queued_ms(&self) -> f64 {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let end = state.started.unwrap_or_else(Instant::now);
        end.duration_since(self.submitted).as_secs_f64() * 1e3
    }

    /// Milliseconds the job has been (or was) running; 0 while queued.
    pub fn run_ms(&self) -> f64 {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match state.started {
            Some(started) => {
                let end = state.finished.unwrap_or_else(Instant::now);
                end.duration_since(started).as_secs_f64() * 1e3
            }
            None => 0.0,
        }
    }

    /// Milliseconds from submission to completion (so far, if not
    /// terminal) — the end-to-end latency the service benchmark reports.
    pub fn total_ms(&self) -> f64 {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let end = state.finished.unwrap_or_else(Instant::now);
        end.duration_since(self.submitted).as_secs_f64() * 1e3
    }

    /// Cancels the job: in-flight training stops at its next round
    /// boundary, and an in-flight valuation stops at its next
    /// permutation/sweep/batch boundary. If this job was training a
    /// memoized world that other jobs are waiting on, one of the
    /// waiters takes over the training.
    pub fn cancel(&self) {
        self.cancel.cancel();
        self.events.push(format!(
            "{{\"job\": {}, \"stage\": \"cancel_requested\"}}",
            self.id
        ));
    }

    /// Blocks until the job is terminal, returning the final status.
    pub fn wait(&self) -> JobStatus {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !state.status.is_terminal() {
            state = self
                .state_changed
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        state.status
    }

    /// Event lines from index `from` onward, plus whether more may
    /// still arrive (`false` once the job is terminal and the log is
    /// fully drained). Blocks up to `timeout` waiting for news when
    /// nothing is pending.
    pub fn events_since(&self, from: usize, timeout: Duration) -> (Vec<String>, bool) {
        let mut entries = self
            .events
            .entries
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if entries.len() <= from && !self.status().is_terminal() {
            let (guard, _) = self
                .events
                .appended
                .wait_timeout(entries, timeout)
                .unwrap_or_else(|e| e.into_inner());
            entries = guard;
        }
        let fresh: Vec<String> = entries[from.min(entries.len())..].to_vec();
        let drained_len = entries.len();
        drop(entries);
        // More events can only arrive while the job is live; if it went
        // terminal we must re-check the log *after* reading status so a
        // terminal event pushed between our snapshot and the status
        // read is not lost.
        let live = !self.status().is_terminal();
        let more = live || {
            let entries = self
                .events
                .entries
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            entries.len() > drained_len
        };
        (fresh, more)
    }

    fn set_status(&self, status: JobStatus) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.status = status;
        match status {
            JobStatus::Running => state.started = Some(Instant::now()),
            s if s.is_terminal() => state.finished = Some(Instant::now()),
            _ => {}
        }
        drop(state);
        self.state_changed.notify_all();
    }

    fn finish(&self, outcome: Result<ValuationReport, String>, cancelled: bool) {
        let status = if cancelled {
            JobStatus::Cancelled
        } else if outcome.is_ok() {
            JobStatus::Done
        } else {
            JobStatus::Failed
        };
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            match outcome {
                Ok(report) => state.report = Some(report),
                Err(message) => state.error = Some(message),
            }
        }
        self.events.push(format!(
            "{{\"job\": {}, \"stage\": \"{}\"}}",
            self.id,
            status.name()
        ));
        self.set_status(status);
    }

    /// Terminal transition after a cancellation checkpoint fired:
    /// `Failed` with the deadline error if the deadline watcher pulled
    /// the token, `Cancelled` otherwise.
    fn finish_interrupted(&self, what: &str) {
        if self.deadline_fired.load(Ordering::Acquire) {
            let limit_ms = self.spec.deadline_ms.unwrap_or(0);
            self.finish(
                Err(ValuationError::Deadline { limit_ms }.to_string()),
                false,
            );
        } else {
            self.finish(Err(what.into()), true);
        }
    }
}

/// Errors [`JobManager::submit`] reports without creating a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// `method` is not in the session registry.
    UnknownMethod(String),
    /// `scenario` is not in the catalog.
    UnknownScenario(String),
    /// The manager is at its concurrent-job capacity.
    AtCapacity(usize),
    /// A structurally invalid spec (zero clients, …).
    InvalidSpec(String),
    /// The manager is draining for shutdown and accepts no new jobs.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            SubmitError::UnknownScenario(s) => write!(f, "unknown scenario {s:?}"),
            SubmitError::AtCapacity(n) => write!(f, "at capacity ({n} active jobs)"),
            SubmitError::InvalidSpec(msg) => write!(f, "invalid spec: {msg}"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A memoized `(scenario, seed)` product: the built world, its trained
/// trace, and the per-round base losses the first oracle evaluated.
/// Shared read-only between every job with the same key, so repeat and
/// concurrent submissions train once and value many times.
struct TrainedWorld {
    world: World,
    trace: TrainingTrace,
    base_losses: Vec<f64>,
}

/// State of one world-memo slot.
enum WorldState {
    /// Some job thread is building/training this world right now;
    /// waiters block on the memo condvar. If the builder is cancelled
    /// or panics it removes the entry, and a waiter takes over.
    Building,
    /// Trained and immutable.
    Ready(Arc<TrainedWorld>),
}

/// The world/trace memo: one slot per [`world_fingerprint`] (hex), the
/// same key the disk cache persists traces and runs training elections
/// under — so the in-process memo and the cross-process protocol agree
/// on world identity.
struct WorldMemo {
    map: Mutex<HashMap<String, WorldState>>,
    changed: Condvar,
}

/// Removes a `Building` slot on unwind so a panicking builder never
/// strands waiters; disarmed when the slot transitions normally.
struct BuildGuard<'a> {
    memo: &'a WorldMemo,
    key: &'a str,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut map = self.memo.map.lock().unwrap_or_else(|e| e.into_inner());
            map.remove(self.key);
            drop(map);
            self.memo.changed.notify_all();
        }
    }
}

struct ManagerInner {
    pool: PoolHandle,
    /// Oracle parallelism per job (`None`: `max(2, pool width)` so even
    /// a 1-core host fans cells out into schedulable chunks instead of
    /// taking the oracle's inline path).
    parallelism: Option<usize>,
    /// The process-shared utility-cell cache every job's oracle
    /// attaches to (possibly disk-backed via `FEDVAL_CACHE_DIR`).
    cache: Arc<CellCache>,
    /// Trained-world memo keyed by resolved scenario + seed.
    worlds: WorldMemo,
    max_active: usize,
    active: AtomicUsize,
    next_id: AtomicU64,
    jobs: Mutex<Vec<Arc<Job>>>,
    /// Set by [`JobManager::begin_shutdown`]: submissions are refused
    /// while running jobs drain.
    draining: AtomicBool,
}

/// Multiplexes concurrent valuation jobs onto one worker pool.
///
/// Each job runs on its own thread; the shared pool's fair-share
/// scheduler arbitrates compute between job classes, the manager's
/// world memo lets jobs with the same `(scenario, seed)` share one
/// trained trace, and every job's oracle attaches to the manager's
/// shared [`CellCache`] so evaluated utility cells are reused across
/// jobs (and across processes, when the cache is disk-backed). The
/// manager retains every job handle, so status and reports stay
/// queryable after completion.
#[derive(Clone)]
pub struct JobManager {
    inner: Arc<ManagerInner>,
}

impl Default for JobManager {
    fn default() -> Self {
        Self::new()
    }
}

impl JobManager {
    /// Default capacity for concurrently active jobs.
    pub const DEFAULT_MAX_ACTIVE: usize = 32;

    /// A manager submitting to [`Pool::global`](fedval_runtime::Pool::global).
    pub fn new() -> Self {
        Self::with_pool(PoolHandle::Global)
    }

    /// A manager submitting to `pool` (benchmarks pin owned pools with
    /// a chosen [`SchedPolicy`](fedval_runtime::SchedPolicy)). The cell
    /// cache comes from the environment
    /// ([`CellCache::from_env`]: `FEDVAL_CACHE_MEM_MB`,
    /// `FEDVAL_CACHE_DIR`).
    pub fn with_pool(pool: PoolHandle) -> Self {
        Self::with_pool_and_cache(pool, CellCache::from_env())
    }

    /// [`Self::with_pool`] with an explicit cell cache — benchmarks and
    /// tests pin disk directories and adversarially small memory
    /// budgets this way.
    pub fn with_pool_and_cache(pool: PoolHandle, cache: Arc<CellCache>) -> Self {
        JobManager {
            inner: Arc::new(ManagerInner {
                pool,
                parallelism: None,
                cache,
                worlds: WorldMemo {
                    map: Mutex::new(HashMap::new()),
                    changed: Condvar::new(),
                },
                max_active: Self::DEFAULT_MAX_ACTIVE,
                active: AtomicUsize::new(0),
                next_id: AtomicU64::new(1),
                jobs: Mutex::new(Vec::new()),
                draining: AtomicBool::new(false),
            }),
        }
    }

    /// The shared utility-cell cache this manager's oracles attach to.
    pub fn cache(&self) -> &Arc<CellCache> {
        &self.inner.cache
    }

    /// Current occupancy/eviction/spill statistics of the shared cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// The registry method keys jobs may request.
    pub fn method_names() -> Vec<String> {
        ValuationSession::builder().build().method_names()
    }

    /// The catalog scenario names jobs may request.
    pub fn scenario_names() -> Vec<String> {
        Scenario::catalog()
            .into_iter()
            .map(|s| s.name.to_string())
            .collect()
    }

    /// The pool this manager's jobs submit to.
    pub fn pool(&self) -> &PoolHandle {
        &self.inner.pool
    }

    /// Number of jobs currently queued or running.
    pub fn active_jobs(&self) -> usize {
        self.inner.active.load(Ordering::Acquire)
    }

    /// Maximum concurrently active (queued + running) jobs; submissions
    /// beyond it are shed with [`SubmitError::AtCapacity`].
    pub fn capacity(&self) -> usize {
        self.inner.max_active
    }

    /// Validates `spec`, spawns its job thread, and returns the job
    /// handle. The call returns as soon as the job is accepted; poll
    /// [`Job::status`] / block on [`Job::wait`] for completion.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<Job>, SubmitError> {
        if self.is_draining() {
            return Err(SubmitError::ShuttingDown);
        }
        if !Self::method_names().contains(&spec.method) {
            return Err(SubmitError::UnknownMethod(spec.method));
        }
        let scenario = spec
            .resolve_scenario()
            .ok_or_else(|| SubmitError::UnknownScenario(spec.scenario.clone()))?;
        if scenario.num_clients == 0 {
            return Err(SubmitError::InvalidSpec("num_clients must be > 0".into()));
        }
        if scenario.samples_per_client == 0 {
            return Err(SubmitError::InvalidSpec(
                "samples_per_client must be > 0".into(),
            ));
        }
        if scenario.rounds == 0 {
            return Err(SubmitError::InvalidSpec("rounds must be > 0".into()));
        }
        // Reserve an active slot before spawning; releases at job end.
        let active = self.inner.active.fetch_add(1, Ordering::AcqRel);
        if active >= self.inner.max_active {
            self.inner.active.fetch_sub(1, Ordering::AcqRel);
            return Err(SubmitError::AtCapacity(self.inner.max_active));
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(Job {
            id,
            spec,
            cancel: CancelToken::new(),
            submitted: Instant::now(),
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                report: None,
                error: None,
                cache: None,
                started: None,
                finished: None,
            }),
            state_changed: Condvar::new(),
            events: EventLog {
                entries: Mutex::new(Vec::new()),
                appended: Condvar::new(),
            },
            deadline_fired: AtomicBool::new(false),
        });
        self.inner
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&job));
        job.events.push(format!(
            "{{\"job\": {id}, \"stage\": \"submitted\", \"method\": \"{}\", \"scenario\": \"{}\", \"class\": \"{}\"}}",
            fedval_jsonio::escaped(&job.spec.method),
            fedval_jsonio::escaped(&job.spec.scenario),
            job.spec.class
        ));
        if let Some(limit_ms) = job.spec.deadline_ms {
            spawn_deadline_watcher(Arc::clone(&job), limit_ms);
        }
        let inner = Arc::clone(&self.inner);
        let thread_job = Arc::clone(&job);
        std::thread::Builder::new()
            .name(format!("fedval-job-{id}"))
            .spawn(move || {
                run_job(&inner, &thread_job, scenario);
                inner.active.fetch_sub(1, Ordering::AcqRel);
            })
            .expect("spawn job thread");
        Ok(job)
    }

    /// The job with this id, if it exists.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.inner
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// Cancels the job with this id; returns its handle, or `None` for
    /// an unknown id. Cancelling a terminal job is a no-op.
    pub fn cancel(&self, id: u64) -> Option<Arc<Job>> {
        let job = self.get(id)?;
        if !job.status().is_terminal() {
            job.cancel();
        }
        Some(job)
    }

    /// Stops accepting new jobs ([`SubmitError::ShuttingDown`]); running
    /// jobs continue. Idempotent; the first step of [`Self::shutdown`].
    pub fn begin_shutdown(&self) {
        self.inner.draining.store(true, Ordering::Release);
    }

    /// Whether the manager is refusing new submissions for shutdown.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop accepting, let running jobs drain for
    /// half of `grace`, checkpoint-cancel any stragglers (they stop at
    /// their next round/permutation boundary) within the remainder,
    /// then flush the shared cache so the directory is warm for the
    /// next process. Blocks up to ~`grace`; the summary reports what
    /// happened. Safe to call more than once.
    pub fn shutdown(&self, grace: Duration) -> ShutdownSummary {
        self.begin_shutdown();
        let deadline = Instant::now() + grace;
        let drain_until = Instant::now() + grace / 2;
        while self.active_jobs() > 0 && Instant::now() < drain_until {
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut jobs_cancelled = 0usize;
        if self.active_jobs() > 0 {
            let live: Vec<Arc<Job>> = self
                .inner
                .jobs
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .filter(|j| !j.status().is_terminal())
                .cloned()
                .collect();
            for job in &live {
                job.cancel();
                jobs_cancelled += 1;
            }
            while self.active_jobs() > 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let drained = self.active_jobs() == 0;
        // Let in-flight pool work settle, then persist everything dirty.
        self.inner
            .pool
            .get()
            .wait_idle(deadline.saturating_duration_since(Instant::now()));
        let cells_flushed = self.inner.cache.flush();
        ShutdownSummary {
            drained,
            jobs_cancelled,
            cells_flushed,
        }
    }
}

/// What a [`JobManager::shutdown`] call accomplished.
#[derive(Debug, Clone, Copy)]
pub struct ShutdownSummary {
    /// Every job reached a terminal state within the grace period.
    pub drained: bool,
    /// Jobs that were checkpoint-cancelled because they outlived the
    /// drain phase.
    pub jobs_cancelled: usize,
    /// Dirty cells persisted by the final flush.
    pub cells_flushed: u64,
}

/// Arms a job's wall-clock deadline: a watcher thread blocks on the
/// job's state condvar until it turns terminal (watcher exits quietly)
/// or the deadline passes (watcher records the deadline and pulls the
/// cancel token, stopping the job at its next checkpoint).
fn spawn_deadline_watcher(job: Arc<Job>, limit_ms: u64) {
    let spawned = std::thread::Builder::new()
        .name(format!("fedval-deadline-{}", job.id))
        .spawn(move || {
            let deadline = Instant::now() + Duration::from_millis(limit_ms);
            let mut state = job.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.status.is_terminal() {
                    return;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = job
                    .state_changed
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
            drop(state);
            job.deadline_fired.store(true, Ordering::Release);
            job.events.push(format!(
                "{{\"job\": {}, \"stage\": \"deadline\", \"limit_ms\": {limit_ms}}}",
                job.id
            ));
            job.cancel.cancel();
        });
    if let Err(e) = spawned {
        // No watcher means no deadline enforcement; the job itself is
        // unaffected. Enforce what we can: log and move on.
        eprintln!("fedval_service: deadline watcher spawn failed: {e}");
    }
}

/// The job thread body: world → trace → oracle → session → report,
/// entirely under the job's class tag.
fn run_job(inner: &ManagerInner, job: &Arc<Job>, scenario: Scenario) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        with_job_class(job.spec.class, || run_job_inner(inner, job, scenario))
    }));
    match outcome {
        Ok(()) => {}
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".into());
            job.finish(Err(format!("panic: {message}")), false);
        }
    }
}

/// The cross-process identity of a job's world: the resolved scenario,
/// the seed, and the fl-config the trainer will run (which carries the
/// training tier, so `FEDVAL_TIER=fast` and bit-exact processes never
/// share a trace). Computable *before* training — this is what keys the
/// persisted trace and the training-election lock.
fn world_fingerprint(scenario: &Scenario, seed: u64) -> Fingerprint {
    let mut h = FingerprintHasher::new("fedval-world-v1");
    h.write_bytes(format!("{scenario:?}").as_bytes());
    h.write_u64(seed);
    let fl = scenario.fl_config(seed).cache_fingerprint();
    h.write_u64(fl.bits() as u64);
    h.write_u64((fl.bits() >> 64) as u64);
    h.finish()
}

/// Returns the memoized trained world for `scenario` + the job's seed,
/// rehydrating it from a persisted trace or building and training it
/// (cancellably) if this job gets there first. The boolean is `true`
/// when training was skipped (in-process memo hit or persisted trace).
fn obtain_world(
    inner: &ManagerInner,
    job: &Arc<Job>,
    scenario: &Scenario,
) -> Result<(Arc<TrainedWorld>, bool), Cancelled> {
    let world = world_fingerprint(scenario, job.spec.seed);
    let key = world.to_hex();
    {
        let mut map = inner.worlds.map.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match map.get(&key) {
                Some(WorldState::Ready(trained)) => return Ok((Arc::clone(trained), true)),
                Some(WorldState::Building) => {
                    // A peer is training this world. Wait with a
                    // timeout so our own cancellation stays live: the
                    // builder only notifies on completion or
                    // abandonment.
                    job.cancel.check()?;
                    let (guard, _) = inner
                        .worlds
                        .changed
                        .wait_timeout(map, Duration::from_millis(25))
                        .unwrap_or_else(|e| e.into_inner());
                    map = guard;
                }
                None => {
                    map.insert(key.clone(), WorldState::Building);
                    break;
                }
            }
        }
    }
    // This job is the process's builder. The guard clears the slot if
    // the build is cancelled or panics, waking a waiter to take over.
    let mut guard = BuildGuard {
        memo: &inner.worlds,
        key: &key,
        armed: true,
    };
    let (trained, reused) = obtain_world_cross_process(inner, job, scenario, world)?;
    let mut map = inner.worlds.map.lock().unwrap_or_else(|e| e.into_inner());
    map.insert(key.clone(), WorldState::Ready(Arc::clone(&trained)));
    guard.armed = false;
    drop(map);
    inner.worlds.changed.notify_all();
    Ok((trained, reused))
}

/// The cross-process half of [`obtain_world`], entered by the single
/// in-process builder: prefer a persisted trace; otherwise run the
/// per-world training election — the winner trains and persists, losers
/// poll for the winner's trace (and inherit the election if the winner
/// dies: the kernel releases its lock). Every path yields bit-identical
/// state, so the election is purely an optimization against duplicated
/// work — an unavailable lock degrades to uncoordinated training.
fn obtain_world_cross_process(
    inner: &ManagerInner,
    job: &Arc<Job>,
    scenario: &Scenario,
    world: Fingerprint,
) -> Result<(Arc<TrainedWorld>, bool), Cancelled> {
    let mut waiting_logged = false;
    loop {
        if let TraceLoad::Ready(record) = inner.cache.load_trace(world) {
            match rehydrate(record, scenario, job.spec.seed) {
                Some(trained) => {
                    job.events.push(format!(
                        "{{\"job\": {}, \"stage\": \"trace_rehydrated\", \"world\": \"{}\"}}",
                        job.id,
                        world.to_hex()
                    ));
                    return Ok((trained, true));
                }
                None => {
                    // Checksum-valid but inconsistent with the world it
                    // claims to be (should be unreachable) — retrain.
                    eprintln!(
                        "fedval_service: persisted trace {} inconsistent with its world; \
                         retraining",
                        world.to_hex()
                    );
                }
            }
        }
        match inner.cache.try_train_lock(world) {
            Some(_election) => {
                // Won. Re-check under the lock: the previous holder may
                // have persisted between our load and this acquisition.
                if let TraceLoad::Ready(record) = inner.cache.load_trace(world) {
                    if let Some(trained) = rehydrate(record, scenario, job.spec.seed) {
                        return Ok((trained, true));
                    }
                }
                let trained = build_and_train(job, scenario)?;
                inner.cache.store_trace(
                    world,
                    &trace_to_record(&trained.trace, &trained.base_losses),
                );
                return Ok((trained, false));
            }
            None => {
                // Another process is training this exact world; poll
                // for its persisted trace, staying cancellable.
                if !waiting_logged {
                    waiting_logged = true;
                    job.events.push(format!(
                        "{{\"job\": {}, \"stage\": \"train_wait\", \"world\": \"{}\"}}",
                        job.id,
                        world.to_hex()
                    ));
                }
                job.cancel.check()?;
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Converts a trained product into the cache crate's neutral persisted
/// form (floats and masks only).
fn trace_to_record(trace: &TrainingTrace, base_losses: &[f64]) -> TraceRecord {
    TraceRecord {
        num_clients: trace.num_clients as u64,
        rounds: trace
            .rounds
            .iter()
            .map(|r| TraceRound {
                global: r.global_params.clone(),
                locals: r.local_params.clone(),
                selected: r.selected.bits(),
                eta: r.eta,
            })
            .collect(),
        final_params: trace.final_params.clone(),
        base_losses: base_losses.to_vec(),
    }
}

/// Rebuilds a [`TrainedWorld`] from a verified persisted trace: the
/// world itself is deterministic from `(scenario, seed)`, so only the
/// training products travel through disk. Cross-checks the record
/// against the freshly built world — any inconsistency (which the
/// checksum should make unreachable) rejects the record and retrains.
fn rehydrate(record: TraceRecord, scenario: &Scenario, seed: u64) -> Option<Arc<TrainedWorld>> {
    let world = scenario.build(seed);
    let config = scenario.fl_config(seed);
    let num_clients = record.num_clients as usize;
    if num_clients != world.clients.len()
        || num_clients > Subset::MAX_CLIENTS
        || record.params_len() != world.prototype.num_params()
        || record.rounds.len() != config.rounds
        || record.base_losses.len() != record.rounds.len()
    {
        return None;
    }
    let full = Subset::full(num_clients).bits();
    let mut rounds = Vec::with_capacity(record.rounds.len());
    for r in record.rounds {
        if r.selected & !full != 0 || r.selected == 0 {
            return None;
        }
        rounds.push(RoundRecord {
            global_params: r.global,
            local_params: r.locals,
            selected: Subset::from_bits(r.selected),
            eta: r.eta,
        });
    }
    let trace = TrainingTrace {
        rounds,
        final_params: record.final_params,
        num_clients,
    };
    Some(Arc::new(TrainedWorld {
        world,
        trace,
        base_losses: record.base_losses,
    }))
}

/// The builder side of [`obtain_world`]: world construction, one
/// cancellable FedAvg run, and the one-time base-loss evaluation every
/// later oracle over this trace reuses.
fn build_and_train(job: &Arc<Job>, scenario: &Scenario) -> Result<Arc<TrainedWorld>, Cancelled> {
    job.cancel.check()?;
    job.events.push(format!(
        "{{\"job\": {}, \"stage\": \"build_world\", \"clients\": {}}}",
        job.id, scenario.num_clients
    ));
    let world = scenario.build(job.spec.seed);
    job.events.push(format!(
        "{{\"job\": {}, \"stage\": \"train\", \"rounds\": {}}}",
        job.id, scenario.rounds
    ));
    let trace = world.try_train(&scenario.fl_config(job.spec.seed), &job.cancel)?;
    let base_losses = {
        let oracle = world.oracle(&trace);
        oracle.base_losses().to_vec()
    };
    Ok(Arc::new(TrainedWorld {
        world,
        trace,
        base_losses,
    }))
}

fn run_job_inner(inner: &ManagerInner, job: &Arc<Job>, scenario: Scenario) {
    job.set_status(JobStatus::Running);
    let spec = &job.spec;
    if job.cancel.is_cancelled() {
        job.finish_interrupted("cancelled before start");
        return;
    }
    let (trained, world_reused) = match obtain_world(inner, job, &scenario) {
        Ok(pair) => pair,
        Err(Cancelled) => {
            job.finish_interrupted("cancelled during training");
            return;
        }
    };
    if world_reused {
        job.events.push(format!(
            "{{\"job\": {}, \"stage\": \"world_reused\", \"clients\": {}}}",
            job.id, scenario.num_clients
        ));
    }
    let mut oracle = UtilityOracle::with_base_losses(
        &trained.trace,
        trained.world.prototype.as_ref(),
        &trained.world.test,
        trained.base_losses.clone(),
    );
    oracle.set_pool(inner.pool.clone());
    // Fan cells out into schedulable chunks even on narrow pools: at
    // parallelism 1 the oracle takes a fully-inline path that the
    // fair-share scheduler never sees.
    oracle.set_parallelism(
        inner
            .parallelism
            .unwrap_or_else(|| inner.pool.threads().max(2)),
    );
    // Apply the spec's tier to the oracle itself (not just the session)
    // so the session never needs a fresh-cache retier clone — which
    // would detach the shared cache. Tier before attaching: the cache
    // keys cells by tier, and attaching loads that tier's disk
    // segments.
    if let Some(tier) = spec.tier {
        oracle.set_tier(tier);
    }
    oracle.set_shared_cache(Arc::clone(&inner.cache));
    let progress_job = Arc::clone(job);
    let mut builder = ValuationSession::builder()
        .rank(spec.rank)
        .permutations(spec.permutations)
        .samples(spec.samples)
        .seed(spec.seed)
        .cancel_token(job.cancel.clone())
        .progress(move |event| {
            progress_job
                .events
                .push(crate::wire::render_progress(progress_job.id, &event));
        });
    if let Some(tier) = spec.tier {
        builder = builder.tier(tier);
    }
    let mut session = builder.build();
    let outcome = session.run(&spec.method, &oracle);
    job.set_cache_info(JobCacheInfo {
        world_reused,
        cell_hits: oracle.cell_hits(),
        cells_computed: oracle.loss_evaluations(),
        disk_warm_cells: oracle.disk_warm_cells(),
        cache_degraded: inner.cache.is_degraded(),
    });
    // Persist whatever this job computed before reporting terminal
    // state: a disk-backed cache must be warm for the next process by
    // the time the client sees "done".
    inner.cache.flush();
    match outcome {
        Ok(report) => job.finish(Ok(report), false),
        Err(ValuationError::Cancelled) => job.finish_interrupted("cancelled"),
        Err(e) => job.finish(Err(e.to_string()), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(method: &str) -> JobSpec {
        let mut spec = JobSpec::new(method);
        spec.num_clients = Some(5);
        spec.samples_per_client = Some(12);
        spec.rounds = Some(3);
        spec.clients_per_round = Some(3);
        spec.seed = 11;
        spec
    }

    #[test]
    fn submit_runs_a_job_to_done() {
        let manager = JobManager::new();
        let job = manager.submit(tiny_spec("fedsv")).unwrap();
        assert_eq!(job.wait(), JobStatus::Done);
        let report = job.report().expect("report");
        assert_eq!(report.values.len(), 5);
        assert!(report.values.iter().all(|v| v.is_finite()));
        assert!(job.queued_ms() >= 0.0);
        assert!(job.run_ms() > 0.0);
        // Lifecycle events bracket the run.
        let (events, more) = job.events_since(0, Duration::from_millis(10));
        assert!(!more, "terminal job with drained log");
        assert!(events.first().unwrap().contains("\"submitted\""));
        assert!(events.last().unwrap().contains("\"done\""));
    }

    #[test]
    fn unknown_method_and_scenario_are_rejected() {
        let manager = JobManager::new();
        assert_eq!(
            manager.submit(JobSpec::new("nope")).unwrap_err(),
            SubmitError::UnknownMethod("nope".into())
        );
        let mut spec = JobSpec::new("fedsv");
        spec.scenario = "mars".into();
        assert_eq!(
            manager.submit(spec).unwrap_err(),
            SubmitError::UnknownScenario("mars".into())
        );
        let mut spec = JobSpec::new("fedsv");
        spec.num_clients = Some(0);
        assert!(matches!(
            manager.submit(spec).unwrap_err(),
            SubmitError::InvalidSpec(_)
        ));
    }

    #[test]
    fn cancel_stops_a_long_job() {
        let manager = JobManager::new();
        let mut spec = tiny_spec("tmc");
        spec.permutations = 500_000;
        let job = manager.submit(spec).unwrap();
        // Let it get into the permutation walk, then cancel.
        while job.status() == JobStatus::Queued {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(30));
        manager.cancel(job.id()).unwrap();
        assert_eq!(job.wait(), JobStatus::Cancelled);
        assert!(job.report().is_none());
    }

    #[test]
    fn jobs_remain_queryable_after_completion() {
        let manager = JobManager::new();
        let job = manager.submit(tiny_spec("fedsv")).unwrap();
        let id = job.id();
        job.wait();
        let fetched = manager.get(id).expect("retained job");
        assert_eq!(fetched.status(), JobStatus::Done);
        assert!(manager.get(id + 999).is_none());
        // The active count drops just *after* the job turns terminal
        // (the job thread decrements on exit); give it a beat.
        let deadline = Instant::now() + Duration::from_secs(2);
        while manager.active_jobs() != 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(manager.active_jobs(), 0);
    }

    #[test]
    fn failed_methods_surface_as_failed_jobs() {
        let manager = JobManager::new();
        // "exact" refuses large worlds: 2^20 subsets is beyond its
        // enumeration gate, which must surface as Failed, not a hang.
        let mut spec = tiny_spec("exact");
        spec.num_clients = Some(20);
        let job = manager.submit(spec).unwrap();
        assert_eq!(job.wait(), JobStatus::Failed);
        assert!(job.error().is_some());
    }

    #[test]
    fn deadline_fails_a_job_that_runs_too_long() {
        let manager = JobManager::new();
        let mut spec = tiny_spec("tmc");
        spec.permutations = 500_000;
        spec.deadline_ms = Some(60);
        let job = manager.submit(spec).unwrap();
        assert_eq!(
            job.wait(),
            JobStatus::Failed,
            "deadline is a failure, not a cancel"
        );
        let err = job.error().expect("deadline error");
        assert!(
            err.contains("deadline exceeded after 60 ms"),
            "typed deadline message, got {err:?}"
        );
        assert!(job.report().is_none());
        let (events, _) = job.events_since(0, Duration::from_millis(10));
        assert!(
            events.iter().any(|e| e.contains("\"deadline\"")),
            "deadline event logged: {events:?}"
        );
    }

    #[test]
    fn generous_deadline_never_fires() {
        let manager = JobManager::new();
        let mut spec = tiny_spec("fedsv");
        spec.deadline_ms = Some(300_000);
        let job = manager.submit(spec).unwrap();
        assert_eq!(job.wait(), JobStatus::Done);
        assert!(job.report().is_some());
    }

    #[test]
    fn shutdown_drains_quick_jobs_and_rejects_new_ones() {
        let manager = JobManager::new();
        let job = manager.submit(tiny_spec("fedsv")).unwrap();
        let summary = manager.shutdown(Duration::from_secs(120));
        assert!(summary.drained, "short job finishes within the grace");
        assert_eq!(summary.jobs_cancelled, 0);
        assert_eq!(job.wait(), JobStatus::Done);
        assert_eq!(
            manager.submit(tiny_spec("fedsv")).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn shutdown_checkpoint_cancels_stragglers() {
        let manager = JobManager::new();
        let mut spec = tiny_spec("tmc");
        spec.permutations = 500_000;
        let job = manager.submit(spec).unwrap();
        while job.status() == JobStatus::Queued {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(30));
        // Small grace: the drain phase (grace/2) gives up quickly and
        // the checkpoint-cancel phase takes over.
        let summary = manager.shutdown(Duration::from_secs(4));
        assert_eq!(
            summary.jobs_cancelled, 1,
            "long job is checkpoint-cancelled"
        );
        assert_eq!(job.wait(), JobStatus::Cancelled);
    }

    #[test]
    fn resolve_scenario_applies_overrides() {
        let mut spec = JobSpec::new("fedsv");
        spec.scenario = "free_riders".into();
        spec.num_clients = Some(12);
        spec.clients_per_round = Some(50);
        let s = spec.resolve_scenario().unwrap();
        assert_eq!(s.num_clients, 12);
        assert_eq!(s.behaviors.len(), 12);
        assert_eq!(s.clients_per_round, 12, "clamped to the client count");
        // The original free riders kept their behaviors.
        assert_eq!(s.num_bad(), 2);
    }
}
