//! Wire formats: parsing [`JobSpec`] request bodies and rendering job
//! status, reports, and progress events as JSON.
//!
//! Everything here rides on `fedval_jsonio` — the same flat scanner and
//! writer the benchmark binaries use — so the service adds no JSON
//! dependency and its output style (compact rows, `": "` separators)
//! matches the committed `BENCH_*.json` artifacts.

use crate::job::{Job, JobSpec, JobStatus};
use fedval_cache::CacheStats;
use fedval_jsonio::{escaped, scan_num, scan_str, JsonWriter};
use fedval_linalg::DeterminismTier;
use fedval_runtime::JobClass;
use fedval_shapley::{Progress, ProgressEvent, ValuationReport};

/// Parses a `POST /jobs` body into a [`JobSpec`].
///
/// Required: `"method"`. Optional: `"scenario"`, `"seed"`, `"tier"`
/// (`"fast"` / `"bit_exact"`), `"class"` (`"interactive"` / `"batch"`),
/// `"rank"`, `"permutations"`, `"samples"`, `"deadline_ms"` (wall-clock
/// budget; the job fails with a deadline error past it), and the world
/// overrides `"num_clients"` / `"samples_per_client"` / `"rounds"` /
/// `"clients_per_round"`. Unknown keys are ignored; recognized keys
/// with malformed values are errors, not silent defaults.
pub fn parse_job_spec(body: &str) -> Result<JobSpec, String> {
    let method = scan_str(body, "method").ok_or("missing required field \"method\"")?;
    let mut spec = JobSpec::new(method);
    if let Some(scenario) = scan_str(body, "scenario") {
        spec.scenario = scenario.to_string();
    }
    if let Some(tier) = scan_str(body, "tier") {
        spec.tier =
            Some(DeterminismTier::parse(tier).ok_or_else(|| format!("unknown tier {tier:?}"))?);
    }
    if let Some(class) = scan_str(body, "class") {
        spec.class = JobClass::parse(class).ok_or_else(|| format!("unknown class {class:?}"))?;
    }
    spec.seed = match scan_whole(body, "seed")? {
        Some(seed) => seed,
        None => spec.seed,
    };
    if let Some(rank) = scan_whole(body, "rank")? {
        spec.rank = rank as usize;
    }
    if let Some(permutations) = scan_whole(body, "permutations")? {
        spec.permutations = permutations as usize;
    }
    if let Some(samples) = scan_whole(body, "samples")? {
        spec.samples = samples as usize;
    }
    spec.deadline_ms = scan_whole(body, "deadline_ms")?;
    spec.num_clients = scan_whole(body, "num_clients")?.map(|v| v as usize);
    spec.samples_per_client = scan_whole(body, "samples_per_client")?.map(|v| v as usize);
    spec.rounds = scan_whole(body, "rounds")?.map(|v| v as usize);
    spec.clients_per_round = scan_whole(body, "clients_per_round")?.map(|v| v as usize);
    Ok(spec)
}

/// Scans `key` as a non-negative integer; a present-but-fractional or
/// negative value is an error (silently truncating a user's `"seed":
/// 1.5` would run the wrong job).
fn scan_whole(body: &str, key: &str) -> Result<Option<u64>, String> {
    match scan_num(body, key) {
        None => Ok(None),
        Some(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Ok(Some(v as u64)),
        Some(v) => Err(format!(
            "field {key:?} must be a non-negative integer, got {v}"
        )),
    }
}

/// One line-delimited JSON event for a session [`ProgressEvent`],
/// tagged with the emitting job's id.
pub fn render_progress(job_id: u64, event: &ProgressEvent<'_>) -> String {
    let mut line = format!(
        "{{\"job\": {job_id}, \"method\": \"{}\", \"stage\": \"{}\"",
        escaped(event.method),
        escaped(event.stage)
    );
    match event.progress {
        Progress::Stage => {}
        Progress::Permutation { index, total } => {
            line.push_str(&format!(", \"permutation\": {index}, \"total\": {total}"));
        }
        Progress::Sweep { index, objective } => {
            line.push_str(&format!(", \"sweep\": {index}, \"objective\": {objective}"));
        }
        Progress::Method { index, total, name } => {
            line.push_str(&format!(
                ", \"method_index\": {index}, \"method_total\": {total}, \"starting\": \"{}\"",
                escaped(name)
            ));
        }
    }
    line.push('}');
    line
}

/// The `GET /jobs/{id}` body: identity, spec echo, lifecycle timings,
/// and — once terminal — the report or error.
pub fn render_job(job: &Job) -> String {
    let status = job.status();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.u64_field("job", job.id());
    w.str_field("status", status.name());
    w.str_field("method", &job.spec().method);
    w.str_field("scenario", &job.spec().scenario);
    w.u64_field("seed", job.spec().seed);
    w.str_field("class", job.spec().class.name());
    if let Some(tier) = job.spec().tier {
        w.str_field("tier", tier.name());
    }
    w.num_field("queued_ms", job.queued_ms());
    w.num_field("run_ms", job.run_ms());
    if let Some(report) = job.report() {
        write_report(&mut w, "report", &report);
    }
    if let Some(cache) = job.cache_info() {
        w.begin_object_field_compact("cache");
        w.bool_field("world_reused", cache.world_reused);
        w.u64_field("cell_hits", cache.cell_hits);
        w.u64_field("cells_computed", cache.cells_computed);
        w.u64_field("disk_warm_cells", cache.disk_warm_cells);
        w.bool_field("degraded", cache.cache_degraded);
        w.end_object();
    }
    if let Some(error) = job.error() {
        w.str_field("error", &error);
    }
    w.end_object();
    w.finish_inline()
}

/// Renders a [`ValuationReport`] as the `key` field of the currently
/// open object (used for the `"report"` field of [`render_job`]).
fn write_report(w: &mut JsonWriter, key: &str, report: &ValuationReport) {
    w.begin_object_field(key);
    w.str_field("method", report.method);
    w.begin_array_field_compact("values");
    for v in &report.values {
        w.num_elem(*v);
    }
    w.end_array();
    w.begin_object_field_compact("diagnostics");
    w.u64_field("cells_evaluated", report.diagnostics.cells_evaluated);
    w.u64_field("cell_hits", report.diagnostics.cell_hits);
    w.u64_field(
        "permutations_used",
        report.diagnostics.permutations_used as u64,
    );
    w.opt_num_field("truncated_fraction", report.diagnostics.truncated_fraction);
    w.u64_field(
        "objective_sweeps",
        report.diagnostics.objective_trace.len() as u64,
    );
    w.end_object();
    w.end_object();
}

/// The `POST /jobs` acceptance body.
pub fn render_accepted(job: &Job) -> String {
    let mut w = JsonWriter::new();
    w.begin_object_compact();
    w.u64_field("job", job.id());
    w.str_field("status", job.status().name());
    w.str_field("class", job.spec().class.name());
    w.end_object();
    w.finish_inline()
}

/// A `{"error": ...}` body for 4xx/5xx responses.
pub fn render_error(message: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object_compact();
    w.str_field("error", message);
    w.end_object();
    w.finish_inline()
}

/// Everything the `/healthz` readiness document reports about the
/// process, gathered by the HTTP layer at request time.
pub struct HealthSnapshot<'a> {
    /// `true` once shutdown has begun — new submissions are shed.
    pub draining: bool,
    /// Jobs currently queued or running.
    pub active_jobs: usize,
    /// Job slots before submissions are shed with 503.
    pub capacity: usize,
    /// Worker threads in the compute pool.
    pub pool_threads: usize,
    /// Compute-pool jobs waiting for a worker (queue pressure).
    pub pool_queue_depth: usize,
    /// Scheduling policy name ("fair" / "fifo").
    pub policy: &'a str,
    /// Shared utility-cell cache counters, including degraded mode.
    pub cache: CacheStats,
}

/// The `GET /healthz` body: a readiness document — load (`active_jobs`
/// vs `capacity`, `pool_queue_depth`), drain state (`status` is
/// `"draining"` once shutdown began), cache health (counters plus the
/// `degraded` flag), and the catalog of what can be submitted.
pub fn render_health(
    health: &HealthSnapshot<'_>,
    methods: &[String],
    scenarios: &[String],
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.str_field("status", if health.draining { "draining" } else { "ok" });
    w.u64_field("active_jobs", health.active_jobs as u64);
    w.u64_field("capacity", health.capacity as u64);
    w.u64_field("pool_threads", health.pool_threads as u64);
    w.u64_field("pool_queue_depth", health.pool_queue_depth as u64);
    w.str_field("policy", health.policy);
    w.begin_object_field_compact("cache");
    w.u64_field("resident_cells", health.cache.resident_cells as u64);
    w.u64_field("capacity_bytes", health.cache.capacity_bytes as u64);
    w.u64_field("spilled_cells", health.cache.spilled_cells);
    w.u64_field("disk_cells_loaded", health.cache.disk_cells_loaded);
    w.u64_field("corrupt_events", health.cache.corrupt_events);
    w.u64_field("write_errors", health.cache.write_errors);
    w.bool_field("degraded", health.cache.disk_degraded);
    w.end_object();
    w.begin_array_field_compact("methods");
    for m in methods {
        w.str_elem(m);
    }
    w.end_array();
    w.begin_array_field_compact("scenarios");
    for s in scenarios {
        w.str_elem(s);
    }
    w.end_array();
    w.end_object();
    w.finish_inline()
}

/// Maps a terminal [`JobStatus`] to a human summary line streamed as
/// the final event marker (informational only; the log's own terminal
/// event carries the machine-readable stage).
pub fn terminal_note(status: JobStatus) -> &'static str {
    match status {
        JobStatus::Done => "job finished",
        JobStatus::Cancelled => "job cancelled",
        JobStatus::Failed => "job failed",
        _ => "job still running",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_spec_uses_defaults() {
        let spec = parse_job_spec(r#"{"method": "comfedsv"}"#).unwrap();
        assert_eq!(spec.method, "comfedsv");
        assert_eq!(spec.scenario, "iid_baseline");
        assert_eq!(spec.seed, 0);
        assert_eq!(spec.class, JobClass::Batch);
        assert!(spec.tier.is_none());
        assert!(spec.num_clients.is_none());
    }

    #[test]
    fn parse_full_spec() {
        let body = r#"{
            "method": "tmc",
            "scenario": "free_riders",
            "seed": 42,
            "tier": "fast",
            "class": "interactive",
            "rank": 6,
            "permutations": 120,
            "samples": 300,
            "num_clients": 10,
            "samples_per_client": 20,
            "rounds": 4,
            "clients_per_round": 5
        }"#;
        let spec = parse_job_spec(body).unwrap();
        assert_eq!(spec.method, "tmc");
        assert_eq!(spec.scenario, "free_riders");
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.tier, Some(DeterminismTier::Fast));
        assert_eq!(spec.class, JobClass::Interactive);
        assert_eq!(spec.rank, 6);
        assert_eq!(spec.permutations, 120);
        assert_eq!(spec.samples, 300);
        assert_eq!(spec.num_clients, Some(10));
        assert_eq!(spec.samples_per_client, Some(20));
        assert_eq!(spec.rounds, Some(4));
        assert_eq!(spec.clients_per_round, Some(5));
    }

    #[test]
    fn parse_rejects_bad_fields() {
        assert!(parse_job_spec(r#"{"scenario": "iid_baseline"}"#).is_err());
        assert!(parse_job_spec(r#"{"method": "tmc", "tier": "warp"}"#).is_err());
        assert!(parse_job_spec(r#"{"method": "tmc", "class": "vip"}"#).is_err());
        assert!(parse_job_spec(r#"{"method": "tmc", "seed": 1.5}"#).is_err());
        assert!(parse_job_spec(r#"{"method": "tmc", "rounds": -3}"#).is_err());
    }

    #[test]
    fn progress_events_render_each_variant() {
        let ev = ProgressEvent {
            method: "tmc",
            stage: "walk",
            progress: Progress::Permutation {
                index: 3,
                total: 80,
            },
        };
        assert_eq!(
            render_progress(7, &ev),
            r#"{"job": 7, "method": "tmc", "stage": "walk", "permutation": 3, "total": 80}"#
        );
        let ev = ProgressEvent {
            method: "comfedsv",
            stage: "complete",
            progress: Progress::Sweep {
                index: 2,
                objective: 1.25,
            },
        };
        assert_eq!(
            render_progress(1, &ev),
            r#"{"job": 1, "method": "comfedsv", "stage": "complete", "sweep": 2, "objective": 1.25}"#
        );
        let ev = ProgressEvent {
            method: "exact",
            stage: "plan",
            progress: Progress::Stage,
        };
        assert_eq!(
            render_progress(2, &ev),
            r#"{"job": 2, "method": "exact", "stage": "plan"}"#
        );
    }

    #[test]
    fn error_bodies_escape_messages() {
        assert_eq!(
            render_error("bad \"quote\""),
            "{\"error\": \"bad \\\"quote\\\"\"}"
        );
    }

    #[test]
    fn health_lists_catalogs_and_readiness() {
        let snapshot = HealthSnapshot {
            draining: false,
            active_jobs: 2,
            capacity: 32,
            pool_threads: 4,
            pool_queue_depth: 7,
            policy: "fair",
            cache: CacheStats::default(),
        };
        let body = render_health(&snapshot, &["comfedsv".into()], &["iid_baseline".into()]);
        assert!(body.contains("\"status\": \"ok\""));
        assert!(body.contains("\"active_jobs\": 2"));
        assert!(body.contains("\"capacity\": 32"));
        assert!(body.contains("\"pool_queue_depth\": 7"));
        assert!(body.contains("\"degraded\": false"));
        assert!(body.contains("\"methods\": [\"comfedsv\"]"));
        assert!(body.contains("\"scenarios\": [\"iid_baseline\"]"));
        let draining = HealthSnapshot {
            draining: true,
            ..snapshot
        };
        assert!(render_health(&draining, &[], &[]).contains("\"status\": \"draining\""));
    }

    #[test]
    fn parse_deadline_ms() {
        let spec = parse_job_spec(r#"{"method": "tmc", "deadline_ms": 2500}"#).unwrap();
        assert_eq!(spec.deadline_ms, Some(2500));
        assert!(parse_job_spec(r#"{"method": "tmc", "deadline_ms": -1}"#).is_err());
    }
}
