//! `fedval_serve`: the valuation service binary.
//!
//! ```text
//! fedval_serve [--addr 127.0.0.1:7878] [--grace-ms 30000]
//! ```
//!
//! Serves the job API (see `fedval_service`'s crate docs for the routes
//! and a curl walkthrough) on the global worker pool. Pool width and
//! scheduling policy come from the usual environment knobs:
//! `FEDVAL_THREADS` (width) and `FEDVAL_SCHED` (`fair` / `fifo`).
//!
//! # Shutdown
//!
//! `SIGTERM` or `SIGINT` triggers a graceful drain: the server stops
//! accepting connections, new submissions are shed with 503, running
//! jobs get half of `--grace-ms` to finish before being
//! checkpoint-cancelled at their next round/permutation boundary, the
//! shared cell cache is flushed to disk, and the process exits 0. A
//! second signal during the drain is ignored (the drain is already as
//! fast as the checkpoints allow).

use fedval_service::http::Server;
use fedval_service::job::JobManager;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; polled by the main thread.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// POSIX `signal(2)`. Installing a plain function pointer keeps the
    /// workspace dependency-free; the handler below only touches an
    /// atomic, which is async-signal-safe.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Release);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: fedval_serve [--addr HOST:PORT] [--grace-ms MILLIS]");
        return;
    }
    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let grace_ms: u64 = match flag_value(&args, "--grace-ms") {
        Some(raw) => match raw.parse() {
            Ok(ms) => ms,
            Err(_) => {
                eprintln!("--grace-ms {raw:?} is not a millisecond count");
                std::process::exit(2);
            }
        },
        None => 30_000,
    };
    let manager = JobManager::new();
    let server = match Server::bind(&addr, manager.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
    println!(
        "fedval_serve listening on {} ({} methods, {} scenarios)",
        server.local_addr(),
        JobManager::method_names().len(),
        JobManager::scenario_names().len()
    );
    let handle = server.start();
    while !SHUTDOWN.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("fedval_serve: shutdown signal received, draining");
    // Shed new submissions first, then stop the acceptor, then drain.
    manager.begin_shutdown();
    handle.stop();
    let summary = manager.shutdown(Duration::from_millis(grace_ms));
    eprintln!(
        "fedval_serve: drained={} jobs_cancelled={} cells_flushed={}",
        summary.drained, summary.jobs_cancelled, summary.cells_flushed
    );
    std::process::exit(if summary.drained { 0 } else { 1 });
}
