//! `fedval_serve`: the valuation service binary.
//!
//! ```text
//! fedval_serve [--addr 127.0.0.1:7878]
//! ```
//!
//! Serves the job API (see `fedval_service`'s crate docs for the routes
//! and a curl walkthrough) on the global worker pool. Pool width and
//! scheduling policy come from the usual environment knobs:
//! `FEDVAL_THREADS` (width) and `FEDVAL_SCHED` (`fair` / `fifo`).

use fedval_service::http::Server;
use fedval_service::job::JobManager;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: fedval_serve [--addr HOST:PORT]");
        return;
    }
    let manager = JobManager::new();
    let server = match Server::bind(&addr, manager) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "fedval_serve listening on {} ({} methods, {} scenarios)",
        server.local_addr(),
        JobManager::method_names().len(),
        JobManager::scenario_names().len()
    );
    server.run();
}
