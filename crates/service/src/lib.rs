//! Multi-tenant valuation-as-a-service over the ComFedSV stack.
//!
//! This crate turns the library's [`ValuationSession`] registry into a
//! small job service: clients `POST` a method + scenario spec, the
//! [`JobManager`] runs each job on its own thread with
//! an isolated [`UtilityOracle`](fedval_fl::UtilityOracle), and all
//! jobs share one worker pool whose fair-share scheduler (see
//! `fedval_runtime`) arbitrates compute between priority classes — an
//! interactive probe stays responsive while a batch sweep saturates the
//! machine.
//!
//! Three layers, one module each:
//!
//! * [`job`] — specs, lifecycle, the manager. Usable directly
//!   (in-process) by benchmarks and tests; the HTTP layer is a thin
//!   shell over it.
//! * [`wire`] — JSON request parsing and response rendering on
//!   `fedval_jsonio` (no JSON dependency).
//! * [`http`] — a hand-rolled HTTP/1.1 server on
//!   `std::net::TcpListener`: blocking acceptor, a thread per
//!   connection, chunked ndjson event streaming.
//!
//! # Correctness contract
//!
//! Job results are **bit-identical to solo runs**: the scheduler only
//! decides *when* queued work runs, never *where results land*
//! (`fedval_runtime`'s determinism contract), and each job's oracle,
//! RNG seeding, and cancel token are private to it. Submitting the same
//! spec against an idle service, a saturated one, a FIFO pool, or
//! `FEDVAL_THREADS=1` produces the same `values` bytes — asserted by
//! this crate's `concurrency` integration test.
//!
//! # Operational contract
//!
//! The service is built to run supervised and be killed without
//! ceremony:
//!
//! * **Graceful drain** — [`JobManager::begin_shutdown`] sheds new
//!   submissions ([`SubmitError::ShuttingDown`] → 503 over HTTP) and
//!   [`JobManager::shutdown`] drains running jobs for half the grace
//!   budget, checkpoint-cancels stragglers at their next round or
//!   permutation boundary, and flushes the cell cache. The
//!   `fedval_serve` binary wires this to `SIGTERM`/`SIGINT` behind a
//!   `--grace-ms` flag.
//! * **Overload shedding** — the manager admits a bounded number of
//!   concurrent jobs; beyond it, submission fails with
//!   [`SubmitError::AtCapacity`] (503 + `Retry-After` over HTTP)
//!   instead of queueing without bound.
//! * **Deadlines** — a spec's `deadline_ms` arms a watcher that
//!   checkpoint-cancels the job when the wall-clock budget expires;
//!   the job fails with `deadline exceeded after N ms`.
//! * **Bounded input** — the HTTP reader caps request heads at 16 KiB
//!   and bodies at 256 KiB (413), and answers malformed framing with
//!   400; no request can buffer unboundedly or panic a connection
//!   thread.
//! * **Readiness** — `GET /healthz` reports draining state, active
//!   jobs vs capacity, pool queue depth, and cache health (including
//!   disk degradation) for supervisor probes.
//!
//! # Quick start
//!
//! ```no_run
//! use fedval_service::http::Server;
//! use fedval_service::job::JobManager;
//!
//! let server = Server::bind("127.0.0.1:7878", JobManager::new()).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.run(); // blocks; Ctrl-C to stop
//! ```
//!
//! Then, from a shell:
//!
//! ```text
//! curl -s -X POST localhost:7878/jobs \
//!   -d '{"method": "comfedsv", "scenario": "free_riders", "class": "interactive"}'
//! curl -s localhost:7878/jobs/1
//! curl -sN localhost:7878/jobs/1/events
//! curl -s -X DELETE localhost:7878/jobs/1
//! ```
//!
//! [`ValuationSession`]: fedval_shapley::ValuationSession

pub mod http;
pub mod job;
pub mod wire;

pub use http::{Server, ServerHandle};
pub use job::{Job, JobCacheInfo, JobManager, JobSpec, JobStatus, SubmitError};
