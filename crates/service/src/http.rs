//! A minimal HTTP/1.1 front end over the [`JobManager`].
//!
//! Hand-rolled on `std::net::TcpListener` — no async runtime, no HTTP
//! dependency — because the service's concurrency lives in the worker
//! pool, not the socket layer: a blocking acceptor and one short-lived
//! thread per connection are plenty for a valuation control plane, and
//! keeping the wire layer in `std` preserves the workspace's
//! zero-dependency footprint.
//!
//! # Routes
//!
//! | Method & path          | Meaning                                        |
//! |------------------------|------------------------------------------------|
//! | `GET /healthz`         | Liveness + method/scenario catalog             |
//! | `POST /jobs`           | Submit a [`JobSpec`](crate::job::JobSpec) body |
//! | `GET /jobs/{id}`       | Status, timings, and (when done) the report    |
//! | `GET /jobs/{id}/events`| Chunked stream of line-delimited JSON events   |
//! | `DELETE /jobs/{id}`    | Cancel the job                                 |
//!
//! Every response body is JSON (`render_*` in [`crate::wire`]); the
//! event stream is `application/x-ndjson` over chunked transfer
//! encoding, one event per line, closed when the job reaches a terminal
//! state. Connections are `Connection: close` — one request each.

use crate::job::{JobManager, SubmitError};
use crate::wire;
use fedval_runtime::{Pool, PoolHandle};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Largest accepted request body.
const MAX_BODY_BYTES: usize = 256 * 1024;

/// How long an event streamer blocks per poll before re-checking the
/// job and the server shutdown flag.
const EVENT_POLL: Duration = Duration::from_millis(100);

/// A parsed request: just the parts the router needs.
struct Request {
    method: String,
    path: String,
    body: String,
}

/// The blocking HTTP server. Construct with [`Server::bind`], then
/// either [`run`](Server::run) on the current thread (the
/// `fedval_serve` binary) or [`start`](Server::start) a background
/// acceptor and keep the [`ServerHandle`] (tests, benchmarks).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    manager: JobManager,
    shutdown: Arc<AtomicBool>,
}

/// Controls a [`Server`] running on a background thread; dropping the
/// handle does *not* stop the server — call [`stop`](ServerHandle::stop).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, or port 0 for an
    /// ephemeral port) and serves jobs through `manager`.
    pub fn bind(addr: &str, manager: JobManager) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            manager,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The manager requests are served through.
    pub fn manager(&self) -> &JobManager {
        &self.manager
    }

    /// Accepts connections until [`ServerHandle::stop`] (or an accept
    /// error after shutdown). Each connection is handled on its own
    /// thread; the acceptor never blocks on request processing.
    pub fn run(self) {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let manager = self.manager.clone();
            let shutdown = Arc::clone(&self.shutdown);
            let _ = std::thread::Builder::new()
                .name("fedval-http".into())
                .spawn(move || handle_connection(stream, &manager, &shutdown));
        }
    }

    /// Moves the acceptor to a background thread and returns its
    /// control handle.
    pub fn start(self) -> ServerHandle {
        let addr = self.addr;
        let shutdown = Arc::clone(&self.shutdown);
        let acceptor = std::thread::Builder::new()
            .name("fedval-accept".into())
            .spawn(move || self.run())
            .expect("spawn acceptor");
        ServerHandle {
            addr,
            shutdown,
            acceptor: Some(acceptor),
        }
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown, unblocks the acceptor with a self-connection,
    /// and joins it. In-flight connection threads finish on their own
    /// (event streamers observe the flag within one poll interval).
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // accept() only returns when a connection arrives; give it one.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

fn handle_connection(stream: TcpStream, manager: &JobManager, shutdown: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(stream);
    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err((status, message)) => {
            let mut stream = reader.into_inner();
            let _ = respond(&mut stream, status, &wire::render_error(&message));
            return;
        }
    };
    let mut stream = reader.into_inner();
    route(&mut stream, manager, shutdown, &request);
}

/// Reads one line (through `\n`, or to EOF), refusing to buffer more
/// than `max` bytes — a client streaming an endless line must cost
/// bounded memory, not an OOM. Returns `(status, message)` pairs ready
/// for [`respond`].
fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    max: usize,
) -> Result<String, (u16, String)> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = reader
            .fill_buf()
            .map_err(|e| (400, format!("read error: {e}")))?;
        if available.is_empty() {
            break; // EOF mid-line; the caller decides if that is fatal.
        }
        let (used, found) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (available.len(), false),
        };
        if buf.len() + used > max {
            return Err((413, "request head too large".into()));
        }
        buf.extend_from_slice(&available[..used]);
        reader.consume(used);
        if found {
            break;
        }
    }
    String::from_utf8(buf).map_err(|_| (400, "request head is not UTF-8".into()))
}

/// Reads one request head + body. Returns `(status, message)` for
/// anything malformed (400) or over limits (413); never panics and
/// never buffers unbounded input.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, (u16, String)> {
    let line = read_line_limited(reader, MAX_HEAD_BYTES)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| (400, "empty request line".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| (400, "request line missing path".to_string()))?
        .to_string();
    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let header = read_line_limited(reader, MAX_HEAD_BYTES)?;
        if header.is_empty() || header == "\r\n" || header == "\n" {
            break;
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err((413, "request head too large".into()));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let length: u64 = value
                    .trim()
                    .parse()
                    .map_err(|_| (400, "invalid Content-Length".to_string()))?;
                if length > MAX_BODY_BYTES as u64 {
                    return Err((413, "request body too large".into()));
                }
                content_length = length as usize;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| (400, format!("short body: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| (400, "body is not UTF-8".to_string()))?;
    Ok(Request { method, path, body })
}

fn route(stream: &mut TcpStream, manager: &JobManager, shutdown: &AtomicBool, request: &Request) {
    let path = request.path.split('?').next().unwrap_or("");
    let result = match (request.method.as_str(), path) {
        ("GET", "/healthz") => handle_health(stream, manager),
        ("POST", "/jobs") => handle_submit(stream, manager, &request.body),
        ("GET", path) => match parse_job_path(path) {
            Some((id, false)) => handle_status(stream, manager, id),
            Some((id, true)) => handle_events(stream, manager, shutdown, id),
            None => respond(stream, 404, &wire::render_error("no such route")),
        },
        ("DELETE", path) => match parse_job_path(path) {
            Some((id, false)) => handle_cancel(stream, manager, id),
            _ => respond(stream, 404, &wire::render_error("no such route")),
        },
        _ => respond(stream, 405, &wire::render_error("method not allowed")),
    };
    // A client that hung up mid-response is its own problem.
    let _ = result;
}

/// `/jobs/{id}` → `(id, false)`; `/jobs/{id}/events` → `(id, true)`.
fn parse_job_path(path: &str) -> Option<(u64, bool)> {
    let rest = path.strip_prefix("/jobs/")?;
    if let Some(id) = rest.strip_suffix("/events") {
        Some((id.parse().ok()?, true))
    } else {
        Some((rest.parse().ok()?, false))
    }
}

fn handle_health(stream: &mut TcpStream, manager: &JobManager) -> io::Result<()> {
    let (threads, queue_depth, policy) = pool_info(manager.pool());
    let snapshot = wire::HealthSnapshot {
        draining: manager.is_draining(),
        active_jobs: manager.active_jobs(),
        capacity: manager.capacity(),
        pool_threads: threads,
        pool_queue_depth: queue_depth,
        policy,
        cache: manager.cache_stats(),
    };
    let body = wire::render_health(
        &snapshot,
        &JobManager::method_names(),
        &JobManager::scenario_names(),
    );
    respond(stream, 200, &body)
}

fn pool_info(pool: &PoolHandle) -> (usize, usize, &'static str) {
    match pool {
        PoolHandle::Global => {
            let pool = Pool::global();
            (
                Pool::global_width(),
                pool.queued_jobs(),
                pool.policy().name(),
            )
        }
        PoolHandle::Owned(pool) => (pool.threads(), pool.queued_jobs(), pool.policy().name()),
    }
}

fn handle_submit(stream: &mut TcpStream, manager: &JobManager, body: &str) -> io::Result<()> {
    let spec = match wire::parse_job_spec(body) {
        Ok(spec) => spec,
        Err(message) => return respond(stream, 400, &wire::render_error(&message)),
    };
    match manager.submit(spec) {
        Ok(job) => respond(stream, 202, &wire::render_accepted(&job)),
        Err(e @ (SubmitError::AtCapacity(_) | SubmitError::ShuttingDown)) => {
            // Overload and drain are both "come back later": shed with
            // 503 + Retry-After instead of queueing unboundedly.
            respond(stream, 503, &wire::render_error(&e.to_string()))
        }
        Err(e) => respond(stream, 400, &wire::render_error(&e.to_string())),
    }
}

fn handle_status(stream: &mut TcpStream, manager: &JobManager, id: u64) -> io::Result<()> {
    match manager.get(id) {
        Some(job) => respond(stream, 200, &wire::render_job(&job)),
        None => respond(stream, 404, &wire::render_error("no such job")),
    }
}

fn handle_cancel(stream: &mut TcpStream, manager: &JobManager, id: u64) -> io::Result<()> {
    match manager.cancel(id) {
        Some(job) => respond(stream, 200, &wire::render_job(&job)),
        None => respond(stream, 404, &wire::render_error("no such job")),
    }
}

/// Streams the job's event log as chunked ndjson: everything logged so
/// far immediately, then live events as they arrive, closing once the
/// job is terminal and the log is drained (or the server shuts down).
fn handle_events(
    stream: &mut TcpStream,
    manager: &JobManager,
    shutdown: &AtomicBool,
    id: u64,
) -> io::Result<()> {
    let Some(job) = manager.get(id) else {
        return respond(stream, 404, &wire::render_error("no such job"));
    };
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    let mut cursor = 0usize;
    loop {
        let (fresh, more) = job.events_since(cursor, EVENT_POLL);
        cursor += fresh.len();
        for line in &fresh {
            write_chunk(stream, line)?;
        }
        if !more || shutdown.load(Ordering::Acquire) {
            break;
        }
    }
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// One chunked-encoding chunk holding `line` plus its newline.
fn write_chunk(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    write!(stream, "{:x}\r\n{line}\n\r\n", line.len() + 1)?;
    stream.flush()
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete JSON response with `Content-Length` framing.
/// 503s carry `Retry-After` so load-shedding reads as backpressure,
/// not failure.
fn respond(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let retry_after = if status == 503 {
        "Retry-After: 1\r\n"
    } else {
        ""
    };
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\n{retry_after}\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        status_text(status),
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_paths_parse() {
        assert_eq!(parse_job_path("/jobs/7"), Some((7, false)));
        assert_eq!(parse_job_path("/jobs/7/events"), Some((7, true)));
        assert_eq!(parse_job_path("/jobs/x"), None);
        assert_eq!(parse_job_path("/jobs/"), None);
        assert_eq!(parse_job_path("/nope"), None);
        assert_eq!(parse_job_path("/jobs/7/eventss"), None);
    }

    #[test]
    fn status_texts_cover_used_codes() {
        for code in [200, 202, 400, 404, 405, 413, 503] {
            assert_ne!(status_text(code), "Internal Server Error");
        }
    }
}
