//! End-to-end exercise of the HTTP API over a real socket: a raw
//! `TcpStream` client (no HTTP dependency on either side) drives
//! submit → poll → stream → cancel against a server on an ephemeral
//! port, and the returned values are checked bit-for-bit against a
//! solo in-process session run of the same spec.

use comfedsv::experiments::Scenario;
use fedval_runtime::{Pool, PoolHandle, SchedPolicy};
use fedval_service::http::Server;
use fedval_service::job::JobManager;
use fedval_shapley::ValuationSession;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Starts a server on an ephemeral port over an owned fair-share pool.
fn start_server() -> fedval_service::http::ServerHandle {
    let pool = PoolHandle::owned(Pool::with_policy(2, SchedPolicy::FairShare));
    let manager = JobManager::with_pool(pool);
    Server::bind("127.0.0.1:0", manager)
        .expect("bind ephemeral port")
        .start()
}

/// Sends one request and returns `(status, body)`. The body is raw —
/// chunked responses keep their framing (use [`read_event_lines`]).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// GETs `/jobs/{id}/events` and de-chunks the ndjson stream into lines.
fn read_event_lines(addr: SocketAddr, id: u64) -> Vec<String> {
    let (status, raw) = request(addr, "GET", &format!("/jobs/{id}/events"), "");
    assert_eq!(status, 200);
    // De-chunk: alternating "<hex-len>\r\n" and "<payload>\r\n" frames.
    let mut payload = String::new();
    let mut rest = raw.as_str();
    while let Some((len_line, after)) = rest.split_once("\r\n") {
        let len = usize::from_str_radix(len_line.trim(), 16).expect("chunk length");
        if len == 0 {
            break;
        }
        payload.push_str(&after[..len]);
        rest = after[len..].strip_prefix("\r\n").expect("chunk terminator");
    }
    payload.lines().map(str::to_string).collect()
}

/// Extracts the compact `"values": [...]` array from a job body.
fn parse_values(body: &str) -> Vec<f64> {
    let start = body.find("\"values\": [").expect("values field") + "\"values\": [".len();
    let end = body[start..].find(']').expect("values close") + start;
    body[start..end]
        .split(", ")
        .map(|v| v.parse().expect("value"))
        .collect()
}

fn poll_until_terminal(addr: SocketAddr, id: u64) -> (String, String) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200);
        let status_value = scan_status(&body);
        if ["done", "cancelled", "failed"].contains(&status_value.as_str()) {
            return (status_value, body);
        }
        assert!(Instant::now() < deadline, "job {id} did not finish");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn scan_status(body: &str) -> String {
    fedval_jsonio::scan_str(body, "status")
        .expect("status field")
        .to_string()
}

fn scan_job_id(body: &str) -> u64 {
    fedval_jsonio::scan_num(body, "job").expect("job id") as u64
}

const SPEC: &str = r#"{"method": "comfedsv", "scenario": "free_riders", "seed": 9,
    "num_clients": 5, "samples_per_client": 12, "rounds": 3, "clients_per_round": 3}"#;

#[test]
fn healthz_reports_catalogs() {
    let server = start_server();
    let (status, body) = request(server.local_addr(), "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(scan_status(&body), "ok");
    assert!(body.contains("\"comfedsv\""));
    assert!(body.contains("\"free_riders\""));
    assert!(body.contains("\"policy\": \"fair\""));
    server.stop();
}

#[test]
fn submitted_job_matches_a_solo_session_bit_for_bit() {
    let server = start_server();
    let addr = server.local_addr();
    let (status, body) = request(addr, "POST", "/jobs", SPEC);
    assert_eq!(status, 202, "{body}");
    let id = scan_job_id(&body);
    let (final_status, body) = poll_until_terminal(addr, id);
    assert_eq!(final_status, "done", "{body}");
    let served = parse_values(&body);

    // The same spec run solo, in process, against its own oracle.
    let mut scenario = Scenario::by_name("free_riders").unwrap();
    scenario.num_clients = 5;
    scenario
        .behaviors
        .resize(5, fedval_fl::ClientBehavior::Honest);
    scenario.samples_per_client = 12;
    scenario.rounds = 3;
    scenario.clients_per_round = 3;
    let world = scenario.build(9);
    let trace = world.train(&scenario.fl_config(9));
    let oracle = world.oracle(&trace);
    let mut session = ValuationSession::builder()
        .rank(4)
        .permutations(80)
        .samples(200)
        .seed(9)
        .build();
    let solo = session.run("comfedsv", &oracle).unwrap();

    assert_eq!(served.len(), solo.values.len());
    for (a, b) in served.iter().zip(&solo.values) {
        assert_eq!(a.to_bits(), b.to_bits(), "served {a} != solo {b}");
    }
    server.stop();
}

#[test]
fn events_stream_carries_progress_to_termination() {
    let server = start_server();
    let addr = server.local_addr();
    let body = r#"{"method": "tmc", "num_clients": 5, "samples_per_client": 12,
        "rounds": 3, "clients_per_round": 3, "permutations": 40}"#;
    let (status, body) = request(addr, "POST", "/jobs", body);
    assert_eq!(status, 202, "{body}");
    let id = scan_job_id(&body);
    let lines = read_event_lines(addr, id);
    assert!(lines.len() >= 3, "expected a real stream, got {lines:?}");
    assert!(lines[0].contains("\"submitted\""));
    assert!(
        lines.iter().any(|l| l.contains("\"permutation\"")),
        "no permutation progress in {lines:?}"
    );
    assert!(lines.last().unwrap().contains("\"done\""));
    // Every line is flat JSON that scans.
    for line in &lines {
        assert_eq!(fedval_jsonio::scan_num(line, "job"), Some(id as f64));
    }
    server.stop();
}

#[test]
fn delete_cancels_a_running_job() {
    let server = start_server();
    let addr = server.local_addr();
    let body = r#"{"method": "tmc", "permutations": 500000, "seed": 3}"#;
    let (status, body) = request(addr, "POST", "/jobs", body);
    assert_eq!(status, 202, "{body}");
    let id = scan_job_id(&body);
    // Let it start working, then cancel over the wire.
    std::thread::sleep(Duration::from_millis(50));
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{id}"), "");
    assert_eq!(status, 200);
    let (final_status, body) = poll_until_terminal(addr, id);
    assert_eq!(final_status, "cancelled", "{body}");
    assert!(!body.contains("\"report\""));
    server.stop();
}

/// Writes `raw` bytes verbatim and returns the status code (0 when the
/// server just closed the connection without a response).
fn raw_request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    // The server may reject (and close) before the whole payload is
    // written — a short write is part of what's under test.
    let _ = stream.write_all(raw);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, response)
}

#[test]
fn malformed_requests_get_clean_errors_not_hangs() {
    let server = start_server();
    let addr = server.local_addr();

    // Bad Content-Length values: not a number, negative.
    for cl in ["banana", "-5"] {
        let raw = format!("POST /jobs HTTP/1.1\r\nContent-Length: {cl}\r\n\r\n{{}}");
        let (status, body) = raw_request(addr, raw.as_bytes());
        assert_eq!(status, 400, "Content-Length {cl:?}: {body}");
        assert!(body.contains("\"error\""), "{body}");
    }

    // Declared body larger than the server accepts: shed before reading.
    let raw = "POST /jobs HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
    let (status, body) = raw_request(addr, raw.as_bytes());
    assert_eq!(status, 413, "{body}");

    // Truncated body: Content-Length promises more than arrives.
    let raw = "POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"method\"";
    let (status, body) = raw_request(addr, raw.as_bytes());
    assert_eq!(status, 400, "{body}");

    // Oversized request line: rejected at the limit, not buffered.
    let mut raw = b"GET /".to_vec();
    raw.extend(std::iter::repeat_n(b'a', 64 * 1024));
    let (status, body) = raw_request(addr, &raw);
    assert_eq!(status, 413, "{body}");

    // Oversized headers: many lines, bounded in total.
    let mut raw = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..2000 {
        raw.extend_from_slice(format!("X-Padding-{i}: {}\r\n", "b".repeat(64)).as_bytes());
    }
    raw.extend_from_slice(b"\r\n");
    let (status, body) = raw_request(addr, &raw);
    assert_eq!(status, 413, "{body}");

    // Non-UTF-8 body.
    let mut raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n".to_vec();
    raw.extend_from_slice(&[0xff, 0xfe]);
    let (status, body) = raw_request(addr, &raw);
    assert_eq!(status, 400, "{body}");

    // Empty request: connection opened and closed without a full line.
    let (status, _) = raw_request(addr, b"");
    assert_eq!(status, 400);

    // The server is still healthy after all of that.
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    server.stop();
}

#[test]
fn error_paths_return_structured_errors() {
    let server = start_server();
    let addr = server.local_addr();
    // No method.
    let (status, body) = request(addr, "POST", "/jobs", r#"{"scenario": "mixed"}"#);
    assert_eq!(status, 400);
    assert!(body.contains("\"error\""));
    // Unknown method.
    let (status, _) = request(addr, "POST", "/jobs", r#"{"method": "alchemy"}"#);
    assert_eq!(status, 400);
    // Unknown job / route / verb.
    assert_eq!(request(addr, "GET", "/jobs/999", "").0, 404);
    assert_eq!(request(addr, "DELETE", "/jobs/999", "").0, 404);
    assert_eq!(request(addr, "GET", "/nope", "").0, 404);
    assert_eq!(request(addr, "PUT", "/jobs", "").0, 405);
    server.stop();
}
