//! The service's two load-bearing promises, exercised in process
//! through the [`JobManager`]:
//!
//! 1. **Bit-identity under multiplexing** — a job's values are
//!    byte-for-byte the same whether it runs alone or interleaved with
//!    concurrent jobs, on any pool width, under either scheduling
//!    policy. Work placement never touches results.
//! 2. **No starvation** — with a large batch job saturating the pool,
//!    an interactive job still completes promptly under fair-share
//!    scheduling.

use fedval_runtime::{JobClass, Pool, PoolHandle, SchedPolicy};
use fedval_service::job::{JobManager, JobSpec, JobStatus};
use fedval_shapley::ValuationSession;
use std::time::{Duration, Instant};

fn tiny(method: &str, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(method);
    spec.num_clients = Some(5);
    spec.samples_per_client = Some(12);
    spec.rounds = Some(3);
    spec.clients_per_round = Some(3);
    spec.seed = seed;
    spec
}

/// The solo baseline: the same valuation run directly, no manager, no
/// shared pool — the oracle's default inline evaluation path.
fn solo(spec: &JobSpec) -> Vec<f64> {
    let scenario = spec.resolve_scenario().expect("known scenario");
    let world = scenario.build(spec.seed);
    let trace = world.train(&scenario.fl_config(spec.seed));
    let oracle = world.oracle(&trace);
    let mut session = ValuationSession::builder()
        .rank(spec.rank)
        .permutations(spec.permutations)
        .samples(spec.samples)
        .seed(spec.seed)
        .build();
    session.run(&spec.method, &oracle).expect("solo run").values
}

fn assert_bits_eq(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: client {i} diverged ({x} vs {y})"
        );
    }
}

#[test]
fn interleaved_jobs_are_bit_identical_to_solo_runs() {
    // Three different methods, seeds, and classes, submitted together
    // so their cells interleave on the shared pool.
    let mut specs = vec![tiny("comfedsv", 7), tiny("tmc", 21), tiny("fedsv", 35)];
    specs[0].class = JobClass::Interactive;
    let baselines: Vec<Vec<f64>> = specs.iter().map(solo).collect();

    for policy in [SchedPolicy::FairShare, SchedPolicy::Fifo] {
        for width in [1usize, 4] {
            let pool = PoolHandle::owned(Pool::with_policy(width, policy));
            let manager = JobManager::with_pool(pool);
            let jobs: Vec<_> = specs
                .iter()
                .map(|s| manager.submit(s.clone()).expect("submit"))
                .collect();
            for ((job, baseline), spec) in jobs.iter().zip(&baselines).zip(&specs) {
                assert_eq!(job.wait(), JobStatus::Done, "{}", spec.method);
                let report = job.report().expect("report");
                assert_bits_eq(
                    &report.values,
                    baseline,
                    &format!("{}/{policy}/width {width}", spec.method),
                );
            }
        }
    }
}

#[test]
fn interactive_job_is_not_starved_by_a_batch_flood() {
    let pool = PoolHandle::owned(Pool::with_policy(2, SchedPolicy::FairShare));
    let manager = JobManager::with_pool(pool);

    // A batch job big enough to keep the pool busy for a long while.
    let mut flood = tiny("tmc", 1);
    flood.permutations = 200_000;
    flood.class = JobClass::Batch;
    let flood_job = manager.submit(flood).expect("submit flood");
    // Let the flood reach its permutation walk before competing.
    let deadline = Instant::now() + Duration::from_secs(30);
    while flood_job.status() == JobStatus::Queued && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(100));

    let mut probe = tiny("fedsv", 2);
    probe.class = JobClass::Interactive;
    let t0 = Instant::now();
    let probe_job = manager.submit(probe).expect("submit probe");
    assert_eq!(probe_job.wait(), JobStatus::Done);
    let probe_elapsed = t0.elapsed();

    manager.cancel(flood_job.id()).expect("cancel flood");
    assert_eq!(flood_job.wait(), JobStatus::Cancelled);

    // The probe takes well under a second solo; the bound leaves wide
    // headroom for a loaded CI machine while still catching actual
    // starvation (the flood alone runs for minutes).
    assert!(
        probe_elapsed < Duration::from_secs(10),
        "interactive probe took {probe_elapsed:?} behind a batch flood"
    );
}

#[test]
fn same_manager_reproduces_itself_across_runs() {
    // Determinism holds not just against solo baselines but between two
    // submissions of the same spec to differently-loaded managers.
    let spec = tiny("comfedsv-mc", 13);
    let run = |concurrent: bool| {
        let pool = PoolHandle::owned(Pool::with_policy(2, SchedPolicy::FairShare));
        let manager = JobManager::with_pool(pool);
        let noise = concurrent.then(|| manager.submit(tiny("tmc", 99)).expect("noise"));
        let job = manager.submit(spec.clone()).expect("submit");
        assert_eq!(job.wait(), JobStatus::Done);
        if let Some(noise) = noise {
            noise.wait();
        }
        job.report().expect("report").values
    };
    let quiet = run(false);
    let busy = run(true);
    assert_bits_eq(&quiet, &busy, "comfedsv-mc quiet vs busy manager");
}
