//! The cache tier's service-level promises, exercised in process
//! through the [`JobManager`]:
//!
//! 1. **Repeat jobs are near-free** — a second submission of the same
//!    spec reuses the memoized trained world and serves every utility
//!    cell from the shared cache (zero loss evaluations), with values
//!    byte-identical to the first run.
//! 2. **Warm disk caches survive restarts** — a fresh manager over the
//!    same `FEDVAL_CACHE_DIR` (simulating a new process) loads the
//!    previous run's cells from disk and recomputes nothing.
//! 3. **Training is cancellable** — `DELETE` during a long training
//!    run stops at a round boundary instead of training to completion,
//!    and a concurrent job waiting on the same world takes over.

use fedval_cache::CellCache;
use fedval_runtime::{Pool, PoolHandle, SchedPolicy};
use fedval_service::job::{JobManager, JobSpec, JobStatus};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tiny(method: &str, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(method);
    spec.num_clients = Some(5);
    spec.samples_per_client = Some(12);
    spec.rounds = Some(3);
    spec.clients_per_round = Some(3);
    spec.seed = seed;
    spec
}

fn manager() -> JobManager {
    JobManager::with_pool(PoolHandle::owned(Pool::with_policy(
        2,
        SchedPolicy::FairShare,
    )))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fedval-service-cache-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_bits_eq(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: client {i} diverged ({x} vs {y})"
        );
    }
}

#[test]
fn repeat_job_is_served_from_the_shared_cache() {
    let manager = manager();
    let spec = tiny("fedsv", 17);

    let first = manager.submit(spec.clone()).unwrap();
    assert_eq!(first.wait(), JobStatus::Done);
    let first_report = first.report().unwrap();
    let first_cache = first.cache_info().unwrap();
    assert!(!first_cache.world_reused, "first job trains the world");
    assert!(first_cache.cells_computed > 0, "cold run computes cells");

    let second = manager.submit(spec).unwrap();
    assert_eq!(second.wait(), JobStatus::Done);
    let second_report = second.report().unwrap();
    let second_cache = second.cache_info().unwrap();
    assert!(second_cache.world_reused, "second job skips training");
    assert_eq!(
        second_cache.cells_computed, 0,
        "warm run recomputes nothing"
    );
    assert!(second_cache.cell_hits > 0, "warm run hits the cache");
    assert_eq!(second_report.diagnostics.cells_evaluated, 0);
    assert_eq!(second_report.diagnostics.cell_hits, second_cache.cell_hits);
    assert_bits_eq(
        &first_report.values,
        &second_report.values,
        "cold vs warm repeat",
    );
}

#[test]
fn concurrent_same_spec_jobs_train_once_and_agree() {
    let manager = manager();
    let spec = tiny("fedsv", 23);
    let jobs: Vec<_> = (0..3)
        .map(|_| manager.submit(spec.clone()).unwrap())
        .collect();
    let mut reports = Vec::new();
    let mut reused = 0;
    for job in &jobs {
        assert_eq!(job.wait(), JobStatus::Done);
        reports.push(job.report().unwrap());
        if job.cache_info().unwrap().world_reused {
            reused += 1;
        }
    }
    assert_eq!(reused, 2, "exactly one job builds; the others reuse");
    for report in &reports[1..] {
        assert_bits_eq(&reports[0].values, &report.values, "concurrent same-spec");
    }
}

#[test]
fn warm_disk_cache_survives_a_manager_restart() {
    let dir = tmpdir("restart");
    let spec = tiny("fedsv", 31);

    // "Process" one: cold run against an empty cache directory.
    let cold_values = {
        let manager = JobManager::with_pool_and_cache(
            PoolHandle::owned(Pool::with_policy(2, SchedPolicy::FairShare)),
            CellCache::with_dir(fedval_cache::DEFAULT_MEM_BUDGET_BYTES, &dir),
        );
        let job = manager.submit(spec.clone()).unwrap();
        assert_eq!(job.wait(), JobStatus::Done);
        let cache = job.cache_info().unwrap();
        assert_eq!(cache.disk_warm_cells, 0, "nothing persisted yet");
        assert!(cache.cells_computed > 0);
        job.report().unwrap().values
    };

    // "Process" two: a brand-new manager and cache over the same
    // directory. The in-process world memo is gone, but the persisted
    // trace lets the fresh manager skip training entirely, and every
    // utility cell loads from disk.
    let manager = JobManager::with_pool_and_cache(
        PoolHandle::owned(Pool::with_policy(2, SchedPolicy::FairShare)),
        CellCache::with_dir(fedval_cache::DEFAULT_MEM_BUDGET_BYTES, &dir),
    );
    let job = manager.submit(spec).unwrap();
    assert_eq!(job.wait(), JobStatus::Done);
    let cache = job.cache_info().unwrap();
    assert!(
        cache.world_reused,
        "fresh manager rehydrates the persisted trace instead of retraining"
    );
    assert!(cache.disk_warm_cells > 0, "cells loaded from disk");
    assert_eq!(cache.cells_computed, 0, "warm disk run recomputes nothing");
    assert_bits_eq(
        &cold_values,
        &job.report().unwrap().values,
        "cold vs disk-warm restart",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unusable_cache_dir_degrades_to_memory_and_is_reported() {
    // The configured cache path can never be a directory: its parent is
    // a regular file. The service must come up memory-only, serve jobs
    // normally, and surface the degradation — not crash or stall.
    let parent = tmpdir("degraded-parent");
    std::fs::write(&parent, b"not a directory").unwrap();
    let dir = parent.join("cache");
    let manager = JobManager::with_pool_and_cache(
        PoolHandle::owned(Pool::with_policy(2, SchedPolicy::FairShare)),
        CellCache::with_dir(fedval_cache::DEFAULT_MEM_BUDGET_BYTES, &dir),
    );
    assert!(manager.cache_stats().disk_degraded, "degraded at startup");
    let job = manager.submit(tiny("fedsv", 53)).unwrap();
    assert_eq!(job.wait(), JobStatus::Done);
    let cache = job.cache_info().unwrap();
    assert!(cache.cache_degraded, "job reports the degraded cache");
    assert!(cache.cell_hits > 0 || cache.cells_computed > 0);
    assert!(job.report().is_some());
    let _ = std::fs::remove_file(&parent);
}

#[test]
fn cancel_during_training_stops_at_a_round_boundary() {
    let manager = manager();
    // Long enough that un-cancelled training would run for minutes.
    let mut spec = tiny("fedsv", 41);
    spec.rounds = Some(200_000);
    spec.samples_per_client = Some(40);
    let job = manager.submit(spec).unwrap();
    while job.status() == JobStatus::Queued {
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(100));
    let t0 = Instant::now();
    manager.cancel(job.id()).unwrap();
    assert_eq!(job.wait(), JobStatus::Cancelled);
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "cancel during training should stop within a round, took {:?}",
        t0.elapsed()
    );
    assert!(job.report().is_none());
    assert_eq!(job.error().as_deref(), Some("cancelled during training"));
}

#[test]
fn cancelled_builder_hands_training_to_a_waiting_job() {
    let manager = manager();
    let mut spec = tiny("fedsv", 47);
    // Big enough that the builder is still training when cancelled,
    // small enough that the surviving job retrains promptly.
    spec.rounds = Some(400);
    spec.samples_per_client = Some(60);
    let builder = manager.submit(spec.clone()).unwrap();
    while builder.status() == JobStatus::Queued {
        std::thread::sleep(Duration::from_millis(1));
    }
    let waiter = manager.submit(spec).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    manager.cancel(builder.id()).unwrap();
    assert_eq!(builder.wait(), JobStatus::Cancelled);
    // The waiter takes over training (or reuses the world if the
    // builder finished before the cancel landed) and completes.
    assert_eq!(waiter.wait(), JobStatus::Done);
    assert_eq!(waiter.report().unwrap().values.len(), 5);
}
