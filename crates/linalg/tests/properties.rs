//! Property-based tests for the dense linear-algebra kernels.

use fedval_linalg::{
    cholesky::ridge_solve, eps_rank_upper_bound, CholeskyFactor, DeterminismTier, Matrix, QrFactor,
    Svd,
};
use proptest::prelude::*;

/// Strategy: a matrix with entries in [-5, 5].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0..5.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_is_involution(m in matrix(4, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_vectors(
        a in matrix(3, 4),
        x in proptest::collection::vec(-3.0..3.0f64, 4),
    ) {
        // (Aᵀ)ᵀ x == A x and matvec_transpose(Aᵀ, x) paths agree.
        let direct = a.matvec(&x).unwrap();
        let via_transpose = a.transpose().matvec_transpose(&x).unwrap();
        for (u, v) in direct.iter().zip(&via_transpose) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn frobenius_triangle_inequality(a in matrix(4, 4), b in matrix(4, 4)) {
        let sum = a.add(&b).unwrap();
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn blocked_gemm_nn_bit_identical_to_naive_reference(
        // Random shapes, including ragged panel edges: dims straddle the
        // kernel's minimum panel width (8) and stay odd-sized.
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mk_data = |s: u64, len: usize| -> Vec<f64> {
            (0..len).map(|i| (((i as u64 * 2654435761 + s * 40503) % 997) as f64 / 499.0) - 1.0).collect()
        };
        let a = mk_data(seed, m * k);
        let b = mk_data(seed + 1, k * n);
        let mut blocked = vec![0.0; m * n];
        let mut naive = vec![7.0; m * n];
        fedval_linalg::gemm::gemm_nn_into(&a, &b, &mut blocked, m, k, n);
        fedval_linalg::gemm::reference::gemm_nn(&a, &b, &mut naive, m, k, n);
        for (x, y) in blocked.iter().zip(&naive) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        // And Matrix::matmul takes the same blocked path.
        let am = Matrix::from_vec(m, k, a).unwrap();
        let bm = Matrix::from_vec(k, n, b).unwrap();
        let via_matrix = am.matmul(&bm).unwrap();
        for (x, y) in via_matrix.as_slice().iter().zip(&naive) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn blocked_gemm_nt_bit_identical_to_naive_reference(
        m in 1usize..30,
        k in 1usize..60,
        n in 1usize..30,
        seed in 0u64..1000,
    ) {
        let mk_data = |s: u64, len: usize| -> Vec<f64> {
            (0..len).map(|i| (((i as u64 * 1099087573 + s * 97) % 883) as f64 / 441.0) - 1.0).collect()
        };
        let a = mk_data(seed, m * k);
        let b = mk_data(seed + 2, n * k);
        let mut blocked = vec![0.0; m * n];
        let mut naive = vec![3.0; m * n];
        let mut scratch = fedval_linalg::gemm::Scratch::new();
        fedval_linalg::gemm::gemm_nt_into(&a, &b, &mut blocked, m, k, n, &mut scratch);
        fedval_linalg::gemm::reference::gemm_nt(&a, &b, &mut naive, m, k, n);
        for (x, y) in blocked.iter().zip(&naive) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fast_tier_gemms_within_documented_epsilon_of_naive(
        // Random/ragged shapes straddling the 8-wide register block and
        // the panel edges, mirroring the bit-exact property tests.
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mk_data = |s: u64, len: usize| -> Vec<f64> {
            (0..len).map(|i| (((i as u64 * 2654435761 + s * 40503) % 997) as f64 / 499.0) - 1.0).collect()
        };
        let a = mk_data(seed, m * k);
        let b = mk_data(seed + 1, k * n);
        let bt = mk_data(seed + 2, n * k);
        // Per-element bound: fast_epsilon(k, Σ|aᵢ||bᵢ|).
        let bound = |ar: &[f64], bc: &mut dyn Iterator<Item = f64>| -> f64 {
            let mag: f64 = ar.iter().zip(bc).map(|(x, y)| (x * y).abs()).sum();
            fedval_linalg::gemm::fast_epsilon(ar.len(), mag)
        };

        let mut fast = vec![0.0; m * n];
        let mut naive = vec![7.0; m * n];
        fedval_linalg::gemm::gemm_nn_tiered(&a, &b, &mut fast, m, k, n, DeterminismTier::Fast);
        fedval_linalg::gemm::reference::gemm_nn(&a, &b, &mut naive, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let eps = bound(&a[i * k..(i + 1) * k], &mut (0..k).map(|kk| b[kk * n + j]));
                prop_assert!((fast[i * n + j] - naive[i * n + j]).abs() <= eps);
            }
        }

        let mut fast_nt = vec![0.0; m * n];
        let mut naive_nt = vec![3.0; m * n];
        let mut scratch = fedval_linalg::gemm::Scratch::new();
        fedval_linalg::gemm::gemm_nt_tiered(
            &a, &bt, &mut fast_nt, m, k, n, &mut scratch, DeterminismTier::Fast,
        );
        fedval_linalg::gemm::reference::gemm_nt(&a, &bt, &mut naive_nt, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let eps = bound(
                    &a[i * k..(i + 1) * k],
                    &mut bt[j * k..(j + 1) * k].iter().copied(),
                );
                prop_assert!((fast_nt[i * n + j] - naive_nt[i * n + j]).abs() <= eps);
            }
        }

        // tn_acc: treat a as (k × m) and accumulate into a warm C.
        let init = mk_data(seed + 3, m * n);
        let at = mk_data(seed + 4, k * m);
        let mut fast_tn = init.clone();
        let mut naive_tn = init.clone();
        fedval_linalg::gemm::gemm_tn_acc_tiered(&at, &b, &mut fast_tn, k, m, n, DeterminismTier::Fast);
        fedval_linalg::gemm::reference::gemm_tn_acc(&at, &b, &mut naive_tn, k, m, n);
        for p in 0..m {
            for q in 0..n {
                let col: Vec<f64> = (0..k).map(|i| at[i * m + p]).collect();
                let eps = bound(&col, &mut (0..k).map(|i| b[i * n + q]))
                    + fedval_linalg::gemm::fast_epsilon(1, init[p * n + q].abs());
                prop_assert!((fast_tn[p * n + q] - naive_tn[p * n + q]).abs() <= eps);
            }
        }
    }

    #[test]
    fn svd_reconstructs_and_is_sorted(m in matrix(5, 4)) {
        let svd = Svd::new(&m).unwrap();
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        let rec = svd.reconstruct_rank(svd.sigma.len());
        prop_assert!(rec.sub(&m).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn svd_frobenius_identity(m in matrix(4, 6)) {
        // ‖M‖_F² = Σ σ_i².
        let svd = Svd::new(&m).unwrap();
        let sigma_sq: f64 = svd.sigma.iter().map(|s| s * s).sum();
        let fro_sq = m.frobenius_norm().powi(2);
        prop_assert!((sigma_sq - fro_sq).abs() < 1e-8 * fro_sq.max(1.0));
    }

    #[test]
    fn cholesky_solves_spd_systems(m in matrix(4, 4), x in proptest::collection::vec(-2.0..2.0f64, 4)) {
        // A = MᵀM + I is SPD.
        let mut a = m.transpose().matmul(&m).unwrap();
        for i in 0..4 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let b = a.matvec(&x).unwrap();
        let solved = CholeskyFactor::new(&a).unwrap().solve(&b).unwrap();
        for (u, v) in solved.iter().zip(&x) {
            prop_assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal(
        a in matrix(6, 3),
        b in proptest::collection::vec(-3.0..3.0f64, 6),
    ) {
        // Skip near-singular designs.
        let gram = a.transpose().matmul(&a).unwrap();
        prop_assume!(CholeskyFactor::new(&{
            let mut g = gram.clone();
            for i in 0..3 { g.set(i, i, g.get(i, i) + 1e-9); }
            g
        }).is_ok());
        let svd = Svd::new(&a).unwrap();
        prop_assume!(svd.sigma[2] > 1e-3);

        let x = QrFactor::new(&a).unwrap().solve_least_squares(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let res: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let grad = a.matvec_transpose(&res).unwrap();
        for g in grad {
            prop_assert!(g.abs() < 1e-6, "gradient {g}");
        }
    }

    #[test]
    fn ridge_shrinks_toward_zero(
        a in matrix(5, 2),
        b in proptest::collection::vec(-3.0..3.0f64, 5),
    ) {
        let x_small = ridge_solve(&a, &b, 1e-6).unwrap();
        let x_large = ridge_solve(&a, &b, 1e6).unwrap();
        let norm = |v: &[f64]| v.iter().map(|u| u * u).sum::<f64>();
        prop_assert!(norm(&x_large) <= norm(&x_small) + 1e-9);
        prop_assert!(norm(&x_large) < 1e-6, "huge lambda must crush the solution");
    }

    #[test]
    fn eps_rank_is_monotone_and_bounded(m in matrix(5, 6)) {
        let loose = eps_rank_upper_bound(&m, 1.0).unwrap();
        let tight = eps_rank_upper_bound(&m, 1e-6).unwrap();
        prop_assert!(loose <= tight);
        prop_assert!(tight <= 5);
    }

    #[test]
    fn max_abs_col_sum_dominates_max_abs(m in matrix(4, 5)) {
        prop_assert!(m.max_abs_col_sum() >= m.max_abs() - 1e-12);
    }
}
