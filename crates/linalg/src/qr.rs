//! Householder QR factorization and least-squares solves.
//!
//! QR backs two needs: a numerically robust least-squares alternative for
//! diagnostics (cross-checking the ALS ridge sub-solves), and the
//! orthogonalization step used when polishing singular vectors.

use crate::{LinalgError, Matrix, Result};

/// Compact Householder QR of an `m × n` matrix with `m ≥ n`.
///
/// Stores the Householder vectors in the lower trapezoid of `qr` and the
/// upper-triangular factor `R` on and above the diagonal.
#[derive(Debug, Clone)]
pub struct QrFactor {
    qr: Matrix,
    /// Scalar `beta_k = 2 / (v_kᵀ v_k)` per reflector; zero marks an identity
    /// reflector (already-zero column).
    betas: Vec<f64>,
}

impl QrFactor {
    /// Factorizes `a` (requires `rows ≥ cols`).
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::InvalidDimension {
                what: "QR requires rows >= cols",
            });
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        for k in 0..n {
            // Build the Householder vector for column k, rows k..m.
            let mut norm_sq = 0.0;
            for i in k..m {
                let v = qr.get(i, k);
                norm_sq += v * v;
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let x0 = qr.get(k, k);
            let alpha = if x0 >= 0.0 { -norm } else { norm };
            // v = x - alpha e1, stored in place with implicit v[k] below.
            let v0 = x0 - alpha;
            // beta = 2 / ||v||^2, where ||v||^2 = norm_sq - x0^2 + v0^2.
            let v_norm_sq = norm_sq - x0 * x0 + v0 * v0;
            if v_norm_sq == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let beta = 2.0 / v_norm_sq;
            betas[k] = beta;
            qr.set(k, k, v0);
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += qr.get(i, k) * qr.get(i, j);
                }
                let scale = beta * dot;
                for i in k..m {
                    let v = qr.get(i, j) - scale * qr.get(i, k);
                    qr.set(i, j, v);
                }
            }
            // Store R's diagonal entry; the Householder vector keeps using
            // the sub-diagonal slots of column k.
            // We stash alpha by overwriting after the updates: remember it
            // in a second pass below. To keep storage simple, scale the
            // Householder vector so that v[k] = 1 and record alpha on the
            // diagonal.
            let inv_v0 = 1.0 / v0;
            for i in (k + 1)..m {
                let v = qr.get(i, k) * inv_v0;
                qr.set(i, k, v);
            }
            betas[k] = beta * v0 * v0; // adjust beta for normalized v
            qr.set(k, k, alpha);
        }
        Ok(QrFactor { qr, betas })
    }

    /// Shape of the factored matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.qr.shape()
    }

    /// Extracts the upper-triangular `R` (size `n × n`).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr.get(i, j) } else { 0.0 })
    }

    /// Applies `Qᵀ` to a vector in place.
    fn apply_q_transpose(&self, y: &mut [f64]) {
        let (m, n) = self.qr.shape();
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            // v[k] = 1, v[i] = qr[i][k] for i > k.
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.qr.get(i, k) * y[i];
            }
            let s = beta * dot;
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qr.get(i, k);
            }
        }
    }

    /// Solves the least-squares problem `min ‖a x − b‖₂`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_q_transpose(&mut y);
        // Back substitution on R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            for j in (i + 1)..n {
                v -= self.qr.get(i, j) * x[j];
            }
            let d = self.qr.get(i, i);
            if d == 0.0 {
                return Err(LinalgError::NotPositiveDefinite { pivot: i });
            }
            x[i] = v / d;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn r_is_upper_triangular_with_expected_diagonal_magnitudes() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let qr = QrFactor::new(&a).unwrap();
        let r = qr.r();
        assert_eq!(r.shape(), (2, 2));
        assert_eq!(r.get(1, 0), 0.0);
        // |R[0][0]| equals the norm of a's first column.
        let c0 = (1.0f64 + 9.0 + 25.0).sqrt();
        assert!(approx(r.get(0, 0).abs(), c0, 1e-12));
    }

    #[test]
    fn least_squares_exact_system() {
        // Square nonsingular system: solution must be exact.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x_true = [1.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = QrFactor::new(&a).unwrap().solve_least_squares(&b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!(approx(*u, *v, 1e-12));
        }
    }

    #[test]
    fn least_squares_overdetermined_matches_normal_equations() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [1.0, 2.1, 2.9, 4.2];
        let x = QrFactor::new(&a).unwrap().solve_least_squares(&b).unwrap();
        // Residual must be orthogonal to the column space: Aᵀ(Ax - b) = 0.
        let ax = a.matvec(&x).unwrap();
        let res: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let grad = a.matvec_transpose(&res).unwrap();
        for g in grad {
            assert!(approx(g, 0.0, 1e-10));
        }
    }

    #[test]
    fn rejects_wide_matrices() {
        assert!(QrFactor::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let qr = QrFactor::new(&Matrix::identity(3)).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }

    #[test]
    fn identity_factorization_solves_directly() {
        let qr = QrFactor::new(&Matrix::identity(3)).unwrap();
        let x = qr.solve_least_squares(&[1.0, 2.0, 3.0]).unwrap();
        assert!(approx(x[0], 1.0, 1e-12));
        assert!(approx(x[1], 2.0, 1e-12));
        assert!(approx(x[2], 3.0, 1e-12));
    }

    #[test]
    fn zero_column_is_singular() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]).unwrap();
        let qr = QrFactor::new(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 1.0, 1.0]).is_err());
    }
}
