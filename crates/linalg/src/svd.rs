//! One-sided Jacobi singular value decomposition.
//!
//! The paper's Example 2 / Figure 2 studies the singular-value decay of the
//! utility matrix `U ∈ R^{T×2^N}` to establish approximate low-rankness, and
//! Definition 3's `ε`-rank is estimated from truncated SVDs. One-sided
//! Jacobi is a good fit: simple, very accurate for small singular values,
//! and the matrices involved are modest (at most a few thousand columns
//! after transposition).

use crate::{LinalgError, Matrix, Result};

/// Full SVD `A = U Σ Vᵀ` with singular values in non-increasing order.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × k` with `k = min(m, n)`.
    pub u: Matrix,
    /// Singular values, length `k`, non-increasing.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `n × k` (columns are the `v_i`).
    pub v: Matrix,
}

impl Svd {
    /// Computes the SVD of `a`.
    ///
    /// Internally runs one-sided Jacobi on the tall orientation and swaps
    /// factors back when the input was wide.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { routine: "svd" });
        }
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidDimension {
                what: "svd of empty matrix",
            });
        }
        if m >= n {
            jacobi_tall(a)
        } else {
            // A = U Σ Vᵀ  ⇔  Aᵀ = V Σ Uᵀ.
            let t = jacobi_tall(&a.transpose())?;
            Ok(Svd {
                u: t.v,
                sigma: t.sigma,
                v: t.u,
            })
        }
    }

    /// Reconstructs the best rank-`k` approximation `U_k Σ_k V_kᵀ`.
    pub fn reconstruct_rank(&self, k: usize) -> Matrix {
        let k = k.min(self.sigma.len());
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Matrix::zeros(m, n);
        for r in 0..k {
            let s = self.sigma[r];
            if s == 0.0 {
                continue;
            }
            for i in 0..m {
                let ui = self.u.get(i, r) * s;
                if ui == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for j in 0..n {
                    out_row[j] += ui * self.v.get(j, r);
                }
            }
        }
        out
    }
}

/// Convenience: singular values only (non-increasing).
pub fn singular_values(a: &Matrix) -> Result<Vec<f64>> {
    Ok(Svd::new(a)?.sigma)
}

/// One-sided Jacobi on a tall (or square) matrix.
fn jacobi_tall(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    // Work on columns of A; store column-major for cache friendliness.
    let mut cols: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut v = Matrix::identity(n);

    let max_sweeps = 60;
    // Convergence threshold relative to the matrix scale.
    let scale = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * scale * scale;

    let mut converged = false;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (app, aqq, apq) = col_moments(&cols[p], &cols[q]);
                off = off.max(apq.abs());
                if apq.abs() <= tol {
                    continue;
                }
                // Jacobi rotation that zeroes the (p,q) entry of AᵀA.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    1.0 / (tau - (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_pair(&mut cols, p, q, c, s);
                rotate_rows(&mut v, p, q, c, s);
            }
        }
        if off <= tol {
            converged = true;
            break;
        }
    }
    if !converged {
        // One-sided Jacobi converges in practice well before 60 sweeps; if
        // it has not, the input is pathological enough to report.
        return Err(LinalgError::NoConvergence {
            routine: "jacobi_svd",
            iterations: max_sweeps,
        });
    }

    // Singular values are the column norms; U's columns the normalized ones.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = cols.iter().map(|c| crate::vector::norm2(c)).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut sigma = Vec::with_capacity(n);
    let mut u = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    for (rank, &src) in order.iter().enumerate() {
        let s = norms[src];
        sigma.push(s);
        if s > 0.0 {
            let inv = 1.0 / s;
            for i in 0..m {
                u.set(i, rank, cols[src][i] * inv);
            }
        }
        for i in 0..n {
            v_sorted.set(i, rank, v.get(src, i));
        }
    }
    Ok(Svd {
        u,
        sigma,
        v: v_sorted,
    })
}

/// Returns `(‖a_p‖², ‖a_q‖², a_pᵀ a_q)`.
fn col_moments(p: &[f64], q: &[f64]) -> (f64, f64, f64) {
    let mut app = 0.0;
    let mut aqq = 0.0;
    let mut apq = 0.0;
    for (&x, &y) in p.iter().zip(q) {
        app += x * x;
        aqq += y * y;
        apq += x * y;
    }
    (app, aqq, apq)
}

/// Applies the rotation to columns `p` and `q` of the working set.
fn rotate_pair(cols: &mut [Vec<f64>], p: usize, q: usize, c: f64, s: f64) {
    debug_assert!(p < q);
    let (head, tail) = cols.split_at_mut(q);
    let cp = &mut head[p];
    let cq = &mut tail[0];
    for (x, y) in cp.iter_mut().zip(cq.iter_mut()) {
        let xp = *x;
        let xq = *y;
        *x = c * xp - s * xq;
        *y = s * xp + c * xq;
    }
}

/// Applies the rotation to rows `p`, `q` of the accumulating V matrix.
/// (Rows, because we store Vᵀ's action row-wise and transpose on output.)
fn rotate_rows(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = v.cols();
    for j in 0..n {
        let vp = v.get(p, j);
        let vq = v.get(q, j);
        v.set(p, j, c * vp - s * vq);
        v.set(q, j, s * vp + c * vq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    fn reconstruct(svd: &Svd) -> Matrix {
        svd.reconstruct_rank(svd.sigma.len())
    }

    #[test]
    fn diagonal_matrix_has_its_diagonal_as_singular_values() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]).unwrap();
        let s = singular_values(&a).unwrap();
        assert!(approx(s[0], 3.0, 1e-12));
        assert!(approx(s[1], 2.0, 1e-12));
    }

    #[test]
    fn singular_values_are_sorted_nonincreasing() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let s = singular_values(&a).unwrap();
        for w in s.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn reconstruction_matches_input_tall() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i + 1) * (j + 2)) as f64 + (i as f64).sin());
        let svd = Svd::new(&a).unwrap();
        let rec = reconstruct(&svd);
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn reconstruction_matches_input_wide() {
        let a = Matrix::from_fn(3, 7, |i, j| (i as f64 - j as f64).cos());
        let svd = Svd::new(&a).unwrap();
        let rec = reconstruct(&svd);
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn rank_one_matrix_has_one_nonzero_singular_value() {
        let a = Matrix::from_fn(4, 5, |i, j| (i + 1) as f64 * (j + 1) as f64);
        let s = singular_values(&a).unwrap();
        assert!(s[0] > 1.0);
        for &v in &s[1..] {
            assert!(v < 1e-9 * s[0]);
        }
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram() {
        // For A = [[1, 1], [0, 1]], AᵀA has eigenvalues (3 ± √5)/2.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let s = singular_values(&a).unwrap();
        let e1 = ((3.0 + 5.0_f64.sqrt()) / 2.0).sqrt();
        let e2 = ((3.0 - 5.0_f64.sqrt()) / 2.0).sqrt();
        assert!(approx(s[0], e1, 1e-10));
        assert!(approx(s[1], e2, 1e-10));
    }

    #[test]
    fn u_and_v_have_orthonormal_columns() {
        let a = Matrix::from_fn(6, 4, |i, j| ((3 * i + 2 * j) % 7) as f64 - 3.0);
        let svd = Svd::new(&a).unwrap();
        let utu = svd.u.transpose().matmul(&svd.u).unwrap();
        let vtv = svd.v.transpose().matmul(&svd.v).unwrap();
        for g in [utu, vtv] {
            for i in 0..g.rows() {
                for j in 0..g.cols() {
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        approx(g.get(i, j), want, 1e-9),
                        "gram {i},{j} = {}",
                        g.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn best_rank_k_truncation_error_is_next_singular_value() {
        // For the spectral norm the Eckart–Young error equals σ_{k+1}; we
        // check the weaker max-entry bound ≤ σ_{k+1}.
        let a = Matrix::from_fn(5, 5, |i, j| 1.0 / ((i + j + 1) as f64)); // Hilbert-ish
        let svd = Svd::new(&a).unwrap();
        for k in 0..4 {
            let rec = svd.reconstruct_rank(k);
            let err = rec.sub(&a).unwrap().max_abs();
            assert!(
                err <= svd.sigma[k] + 1e-10,
                "k={k}: {err} vs {}",
                svd.sigma[k]
            );
        }
    }

    #[test]
    fn rejects_nan_input() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, f64::NAN);
        assert!(Svd::new(&a).is_err());
    }

    #[test]
    fn zero_matrix_has_zero_singular_values() {
        let s = singular_values(&Matrix::zeros(3, 3)).unwrap();
        assert!(s.iter().all(|&v| v == 0.0));
    }
}
