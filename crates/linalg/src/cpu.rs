//! One cached CPU-feature probe for the whole kernel family.
//!
//! Every GEMM dispatcher used to call `is_x86_feature_detected!` at its
//! own entry point; this module performs the probe **once**, caches it,
//! and exposes a single policy function, [`kernel_isa`], mapping a
//! [`DeterminismTier`] to the instantiation that tier selects on this
//! machine. The bench harness and log lines print the result, so a run
//! records which kernels it actually executed.

use crate::tier::DeterminismTier;
use std::sync::OnceLock;

/// The runtime-detected instruction-set features the kernels care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// 256-bit AVX2 (the bit-exact kernels' wide instantiation).
    pub avx2: bool,
    /// Fused multiply–add (required by every `Fast`-tier kernel).
    pub fma: bool,
    /// AVX-512 foundation (the `Fast` tier's wider-SIMD instantiation).
    pub avx512f: bool,
}

/// The detected features, probed once per process and cached.
pub fn features() -> CpuFeatures {
    static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();
    *FEATURES.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            CpuFeatures {
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                fma: std::arch::is_x86_feature_detected!("fma"),
                avx512f: std::arch::is_x86_feature_detected!("avx512f"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            CpuFeatures {
                avx2: false,
                fma: false,
                avx512f: false,
            }
        }
    })
}

/// Which compiled instantiation of the GEMM family a tier runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelIsa {
    /// Portable baseline (also the non-x86-64 answer for every tier).
    Scalar,
    /// AVX2, no contraction — bit-exact.
    Avx2,
    /// AVX2 + FMA, reduction-reordered — `Fast` only.
    Avx2Fma,
    /// AVX-512 + FMA, reduction-reordered — `Fast` only.
    Avx512Fma,
}

impl KernelIsa {
    /// Stable lowercase name for logs and the bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            KernelIsa::Scalar => "scalar",
            KernelIsa::Avx2 => "avx2",
            KernelIsa::Avx2Fma => "avx2+fma",
            KernelIsa::Avx512Fma => "avx512+fma",
        }
    }
}

impl std::fmt::Display for KernelIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The instantiation `tier` selects on this machine — the single
/// dispatch policy shared by every tiered kernel entry point.
///
/// * `BitExact` picks the widest **non-contracting** instantiation:
///   AVX2 when available, otherwise scalar. Lane width cannot change
///   bit-exact results (each lane is a different output element).
/// * `Fast` picks the widest **FMA** instantiation: AVX-512+FMA, then
///   AVX2+FMA. Without runtime FMA support it falls back to the
///   bit-exact choice, so `Fast` never runs a slow unfused `mul_add`.
pub fn kernel_isa(tier: DeterminismTier) -> KernelIsa {
    let f = features();
    let exact = if f.avx2 {
        KernelIsa::Avx2
    } else {
        KernelIsa::Scalar
    };
    match tier {
        DeterminismTier::BitExact => exact,
        DeterminismTier::Fast => {
            if f.avx512f && f.fma {
                KernelIsa::Avx512Fma
            } else if f.avx2 && f.fma {
                KernelIsa::Avx2Fma
            } else {
                exact
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_stable() {
        assert_eq!(features(), features());
    }

    #[test]
    fn bit_exact_never_selects_a_contracting_kernel() {
        let isa = kernel_isa(DeterminismTier::BitExact);
        assert!(matches!(isa, KernelIsa::Scalar | KernelIsa::Avx2), "{isa}");
    }

    #[test]
    fn fast_selects_fma_only_when_detected() {
        let f = features();
        let isa = kernel_isa(DeterminismTier::Fast);
        match isa {
            KernelIsa::Avx512Fma => assert!(f.avx512f && f.fma),
            KernelIsa::Avx2Fma => assert!(f.avx2 && f.fma),
            KernelIsa::Avx2 | KernelIsa::Scalar => {
                assert!(
                    !f.fma || (!f.avx2 && !f.avx512f),
                    "FMA available but unused: {f:?}"
                )
            }
        }
    }

    #[test]
    fn isa_names_are_stable() {
        assert_eq!(KernelIsa::Scalar.name(), "scalar");
        assert_eq!(KernelIsa::Avx2.name(), "avx2");
        assert_eq!(KernelIsa::Avx2Fma.name(), "avx2+fma");
        assert_eq!(KernelIsa::Avx512Fma.name(), "avx512+fma");
    }
}
