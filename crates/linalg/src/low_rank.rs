//! `ε`-rank estimation (paper Definition 3).
//!
//! `rank_ε(X) = min { rank(Z) : ‖Z − X‖_max ≤ ε }` is NP-hard to compute
//! exactly; following the paper's own empirical methodology (Example 2) we
//! report the *upper bound* obtained from truncated SVDs: the smallest `k`
//! whose best rank-`k` approximation (in Frobenius norm) already meets the
//! max-entry tolerance. Propositions 1–2 bound the true `ε`-rank, and since
//! our estimate dominates it, verifying the estimate against those bounds is
//! a sound (conservative) experimental check.

use crate::{Matrix, Result, Svd};

/// Smallest `k` such that the rank-`k` truncated SVD of `a` approximates it
/// to within `eps` in max-entry norm. This upper-bounds `rank_ε(a)`.
pub fn eps_rank_upper_bound(a: &Matrix, eps: f64) -> Result<usize> {
    let svd = Svd::new(a)?;
    eps_rank_from_svd(a, &svd, eps)
}

/// Same as [`eps_rank_upper_bound`] but reuses a precomputed SVD, which is
/// how the Fig-2 harness evaluates many `ε` values on one matrix.
pub fn eps_rank_from_svd(a: &Matrix, svd: &Svd, eps: f64) -> Result<usize> {
    let k_max = svd.sigma.len();
    // Rank 0 check: the zero matrix approximates within eps?
    if a.max_abs() <= eps {
        return Ok(0);
    }
    // Incrementally accumulate rank-1 terms to avoid k passes of full
    // reconstruction.
    let m = svd.u.rows();
    let n = svd.v.rows();
    let mut acc = Matrix::zeros(m, n);
    for k in 0..k_max {
        let s = svd.sigma[k];
        for i in 0..m {
            let ui = svd.u.get(i, k) * s;
            if ui == 0.0 {
                continue;
            }
            let row = acc.row_mut(i);
            for j in 0..n {
                row[j] += ui * svd.v.get(j, k);
            }
        }
        if acc.sub(a)?.max_abs() <= eps {
            return Ok(k + 1);
        }
    }
    Ok(k_max)
}

/// Best rank-`k` reconstruction of `a` (Frobenius-optimal by Eckart–Young).
pub fn truncated_reconstruction(a: &Matrix, k: usize) -> Result<Matrix> {
    Ok(Svd::new(a)?.reconstruct_rank(k))
}

/// Relative Frobenius reconstruction error `‖A − A_k‖_F / ‖A‖_F`, the
/// quantity plotted in the paper's Figure 3 (there against an ALS-completed
/// matrix; here available for any rank-k truncation as a reference curve).
pub fn relative_frobenius_error(a: &Matrix, approx: &Matrix) -> Result<f64> {
    let denom = a.frobenius_norm();
    if denom == 0.0 {
        return Ok(0.0);
    }
    Ok(a.sub(approx)?.frobenius_norm() / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_rank_plus_noise(rank: usize, noise: f64) -> Matrix {
        // Deterministic pseudo-random low-rank matrix with tiny perturbation.
        let m = 12;
        let n = 20;
        let u = Matrix::from_fn(m, rank, |i, r| ((i * 3 + r * 7) % 11) as f64 / 11.0 - 0.5);
        let v = Matrix::from_fn(n, rank, |j, r| ((j * 5 + r * 2) % 13) as f64 / 13.0 - 0.5);
        let base = u.matmul_transpose(&v).unwrap();
        Matrix::from_fn(m, n, |i, j| {
            base.get(i, j) + noise * (((i * 31 + j * 17) % 7) as f64 / 7.0 - 0.5)
        })
    }

    #[test]
    fn exact_low_rank_matrix_detected() {
        let a = low_rank_plus_noise(3, 0.0);
        let r = eps_rank_upper_bound(&a, 1e-10).unwrap();
        assert!(r <= 3, "estimated rank {r}");
    }

    #[test]
    fn eps_rank_is_monotone_in_eps() {
        let a = low_rank_plus_noise(4, 1e-3);
        let tight = eps_rank_upper_bound(&a, 1e-8).unwrap();
        let loose = eps_rank_upper_bound(&a, 1e-2).unwrap();
        assert!(loose <= tight);
    }

    #[test]
    fn zero_matrix_has_rank_zero_for_any_eps() {
        let a = Matrix::zeros(5, 5);
        assert_eq!(eps_rank_upper_bound(&a, 1e-12).unwrap(), 0);
    }

    #[test]
    fn small_noise_absorbed_by_matching_eps() {
        let a = low_rank_plus_noise(2, 1e-4);
        // eps well above noise level: the noise is absorbed.
        let r = eps_rank_upper_bound(&a, 1e-2).unwrap();
        assert!(r <= 2, "estimated rank {r}");
    }

    #[test]
    fn truncation_error_decreases_with_rank() {
        let a = low_rank_plus_noise(5, 1e-2);
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let rec = truncated_reconstruction(&a, k).unwrap();
            let err = relative_frobenius_error(&a, &rec).unwrap();
            assert!(err <= prev + 1e-12, "rank {k} error {err} > prev {prev}");
            prev = err;
        }
    }

    #[test]
    fn relative_error_of_exact_reconstruction_is_zero() {
        let a = low_rank_plus_noise(3, 0.0);
        let rec = truncated_reconstruction(&a, 12).unwrap();
        assert!(relative_frobenius_error(&a, &rec).unwrap() < 1e-9);
    }

    #[test]
    fn relative_error_of_zero_approx_is_one() {
        let a = low_rank_plus_noise(2, 0.0);
        let z = Matrix::zeros(a.rows(), a.cols());
        let e = relative_frobenius_error(&a, &z).unwrap();
        assert!((e - 1.0).abs() < 1e-12);
    }
}
