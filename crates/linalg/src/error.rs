//! Error type shared by the linear-algebra kernels.

use std::fmt;

/// Errors produced by the dense kernels.
///
/// The crate prefers returning structured errors over panicking so that the
/// higher layers (ALS solver, experiment drivers) can surface a diagnosable
/// failure for a particular round/configuration instead of aborting a long
/// experiment sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left operand `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix expected to be symmetric positive definite was not.
    NotPositiveDefinite {
        /// Index of the pivot that failed.
        pivot: usize,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine.
        routine: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
    /// The input contained a non-finite value (NaN or infinity).
    NonFinite {
        /// Name of the routine that detected it.
        routine: &'static str,
    },
    /// The requested dimension is invalid (for example a zero-sized factor).
    InvalidDimension {
        /// Description of the constraint that was violated.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NoConvergence {
                routine,
                iterations,
            } => write!(
                f,
                "{routine} did not converge after {iterations} iterations"
            ),
            LinalgError::NonFinite { routine } => {
                write!(f, "{routine} encountered a non-finite value")
            }
            LinalgError::InvalidDimension { what } => write!(f, "invalid dimension: {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in matmul: lhs is 2x3, rhs is 4x5"
        );
    }

    #[test]
    fn display_not_positive_definite() {
        let e = LinalgError::NotPositiveDefinite { pivot: 3 };
        assert!(e.to_string().contains("pivot 3"));
    }

    #[test]
    fn display_no_convergence() {
        let e = LinalgError::NoConvergence {
            routine: "jacobi_svd",
            iterations: 64,
        };
        assert!(e.to_string().contains("jacobi_svd"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LinalgError>();
    }
}
