//! The determinism/performance knob of the numeric kernels.
//!
//! PRs 1–5 kept every kernel **bit-exact**: each output element is one
//! full-length, in-order sequential sum, so batched, blocked, and
//! SIMD-dispatched code produces bit-identical results to the naive
//! per-sample loops. That contract is what [`DeterminismTier::BitExact`]
//! (the default) continues to guarantee. [`DeterminismTier::Fast`]
//! relaxes *only* the within-element reduction order and floating-point
//! contraction, in exchange for FMA-fused, wider-SIMD kernels and a
//! GEMM-routed convolution — with a documented per-op error bound
//! ([`fast_epsilon`](crate::gemm::fast_epsilon)) against the bit-exact
//! reference.
//!
//! The tier is a *per-session* property: it is carried by value through
//! `Workspace` → model kernels → `UtilityOracle` → `ValuationSession`,
//! never stored in a global, so concurrent sessions sharing one worker
//! pool can mix tiers safely.

use std::sync::OnceLock;

/// Which arithmetic contract the numeric kernels honor.
///
/// # Exactly which operations may reorder under `Fast`
///
/// `Fast` changes the floating-point *result* of these operations, and
/// only these:
///
/// * **GEMM reductions** ([`gemm_nn_tiered`](crate::gemm::gemm_nn_tiered),
///   [`gemm_nt_tiered`](crate::gemm::gemm_nt_tiered),
///   [`gemm_tn_acc_tiered`](crate::gemm::gemm_tn_acc_tiered)): the
///   per-element dot over the shared dimension is split into **two
///   interleaved partial chains** (even/odd terms of each 8-term block)
///   combined pairwise at the end, and each multiply–add is **FMA-fused**
///   (one rounding instead of two). Memory-traffic blocking is unchanged.
/// * **CNN convolution forward/backward** (`fedval_models`): the conv
///   layer routes through im2col + the tiered GEMM family, so each conv
///   activation becomes a kernel-row-major 9-term FMA dot instead of the
///   scalar row-by-row accumulation, and the conv weight gradient
///   accumulates over `samples × positions` in the tiered `tn` kernel's
///   order instead of sample-by-sample. ReLU, average pooling, bias
///   addition, and the loss epilogue are element-wise and unchanged.
///
/// Everything else — `add_bias_rows`, `col_sums_acc`, `vector::dot` /
/// `axpy`, softmax/log-sum-exp, Cholesky/QR/SVD, the ALS matrix
/// completion (`gram_into` stays bit-exact on purpose), and all
/// per-sample reference paths — is identical in both tiers.
///
/// `Fast` is still **deterministic**: the alternative reduction order is
/// fixed and the kernel instantiation is chosen once per process
/// ([`kernel_isa`](crate::cpu::kernel_isa)), so two `Fast` runs of the
/// same computation on the same machine are bit-identical *to each
/// other* — serial-vs-parallel equivalence holds within a tier. Only the
/// cross-tier comparison is relaxed, to within
/// [`fast_epsilon`](crate::gemm::fast_epsilon).
///
/// On hardware without runtime-detected FMA support, `Fast` falls back
/// to the bit-exact kernels (the tiers then coincide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeterminismTier {
    /// Reference arithmetic: every reduction is one in-order sequential
    /// sum; results are bit-identical across blocking, threading, and
    /// SIMD width. The default.
    #[default]
    BitExact,
    /// FMA-fused, reduction-reordered kernels within a documented ε of
    /// [`BitExact`](Self::BitExact); deterministic within the tier.
    Fast,
}

impl DeterminismTier {
    /// Parses a tier name: `fast` → `Fast`; `bitexact` / `bit_exact` /
    /// `bit-exact` / `exact` → `BitExact` (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "fast" => Some(DeterminismTier::Fast),
            "bitexact" | "bit_exact" | "bit-exact" | "exact" => Some(DeterminismTier::BitExact),
            _ => None,
        }
    }

    /// The tier requested by the `FEDVAL_TIER` environment variable, if
    /// set to a recognized value (see [`parse`](Self::parse)). A set
    /// but unrecognized value logs one warning and reads as unset — a
    /// bad env var must never take the process down.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("FEDVAL_TIER").ok()?;
        let tier = Self::parse(&raw);
        if tier.is_none() {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "fedval_linalg: FEDVAL_TIER={raw:?} is not a tier name \
                     (expected \"fast\" or \"bit_exact\"); using the default"
                );
            });
        }
        tier
    }

    /// The process-wide default tier: `FEDVAL_TIER` if set and valid,
    /// otherwise [`BitExact`](Self::BitExact). Read once and cached —
    /// this is what `Workspace::new()` and the oracle/trainer
    /// constructors use, so the env override flows through the whole
    /// stack while explicit `with_tier(..)` calls still win.
    pub fn default_tier() -> Self {
        static DEFAULT: OnceLock<DeterminismTier> = OnceLock::new();
        *DEFAULT.get_or_init(|| Self::from_env().unwrap_or_default())
    }

    /// Stable lowercase name (`"bit_exact"` / `"fast"`) — used by the
    /// bench JSON schema and log lines.
    pub fn name(self) -> &'static str {
        match self {
            DeterminismTier::BitExact => "bit_exact",
            DeterminismTier::Fast => "fast",
        }
    }

    /// Stable one-byte identifier (`BitExact` = 0, `Fast` = 1) — part of
    /// the on-disk cell-cache key, so it must never be renumbered. New
    /// tiers take fresh values.
    pub fn id(self) -> u8 {
        match self {
            DeterminismTier::BitExact => 0,
            DeterminismTier::Fast => 1,
        }
    }
}

impl std::fmt::Display for DeterminismTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_bit_exact() {
        assert_eq!(DeterminismTier::default(), DeterminismTier::BitExact);
    }

    #[test]
    fn parse_accepts_spellings_and_rejects_junk() {
        assert_eq!(DeterminismTier::parse("fast"), Some(DeterminismTier::Fast));
        assert_eq!(
            DeterminismTier::parse(" FAST "),
            Some(DeterminismTier::Fast)
        );
        for s in ["bitexact", "bit_exact", "bit-exact", "exact", "BitExact"] {
            assert_eq!(
                DeterminismTier::parse(s),
                Some(DeterminismTier::BitExact),
                "{s}"
            );
        }
        assert_eq!(DeterminismTier::parse("turbo"), None);
        assert_eq!(DeterminismTier::parse(""), None);
    }

    #[test]
    fn names_round_trip() {
        for t in [DeterminismTier::BitExact, DeterminismTier::Fast] {
            assert_eq!(DeterminismTier::parse(t.name()), Some(t));
            assert_eq!(format!("{t}"), t.name());
        }
    }

    #[test]
    fn ids_are_pinned() {
        // On-disk cache keys depend on these exact values.
        assert_eq!(DeterminismTier::BitExact.id(), 0);
        assert_eq!(DeterminismTier::Fast.id(), 1);
    }
}
