//! BLAS-1 style vector kernels.
//!
//! These are the primitives shared by the model gradients, the FedAvg
//! aggregation step, and the ALS solver. They operate on plain slices so
//! every layer can keep its parameters as a flat `Vec<f64>` (which is what
//! makes model averaging in FedAvg a one-liner).

/// Dot product of two equal-length slices.
///
/// Panics in debug builds when lengths differ; in release the shorter length
/// wins (the callers all guarantee equal lengths).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y *= alpha`.
#[inline]
pub fn scale(alpha: f64, y: &mut [f64]) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Element-wise mean of a set of equal-length vectors.
///
/// This is exactly the FedAvg aggregation `w = (1/|S|) Σ_{k∈S} w_k`.
/// Returns `None` for an empty set (an empty coalition has no model).
pub fn mean_of<'a, I>(vectors: I) -> Option<Vec<f64>>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut it = vectors.into_iter();
    let first = it.next()?;
    let mut acc = first.to_vec();
    let mut count = 1usize;
    for v in it {
        debug_assert_eq!(v.len(), acc.len());
        for (a, &x) in acc.iter_mut().zip(v) {
            *a += x;
        }
        count += 1;
    }
    let inv = 1.0 / count as f64;
    for a in &mut acc {
        *a *= inv;
    }
    Some(acc)
}

/// [`mean_of`] into a caller-provided buffer: `out` is overwritten with
/// the element-wise mean and `true` is returned, or left untouched with
/// `false` for an empty set. Bit-identical to [`mean_of`] (same
/// accumulate-then-scale order); the allocation-free form the utility
/// oracle uses for its per-cell FedAvg aggregates.
pub fn mean_into<'a, I>(vectors: I, out: &mut Vec<f64>) -> bool
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut it = vectors.into_iter();
    let Some(first) = it.next() else {
        return false;
    };
    out.clear();
    out.extend_from_slice(first);
    let mut count = 1usize;
    for v in it {
        debug_assert_eq!(v.len(), out.len());
        for (a, &x) in out.iter_mut().zip(v) {
            *a += x;
        }
        count += 1;
    }
    let inv = 1.0 / count as f64;
    for a in out.iter_mut() {
        *a *= inv;
    }
    true
}

/// Index of the maximum entry (first one wins on ties).
pub fn argmax(a: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in a.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Numerically stable softmax, written into `out`.
pub fn softmax_into(logits: &[f64], out: &mut [f64]) {
    debug_assert_eq!(logits.len(), out.len());
    let m = logits.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let mut sum = 0.0;
    for (o, &l) in out.iter_mut().zip(logits) {
        let e = (l - m).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

/// Numerically stable `log(Σ exp(a_i))`.
pub fn log_sum_exp(a: &[f64]) -> f64 {
    let m = a.iter().fold(f64::NEG_INFINITY, |x, &y| x.max(y));
    if m.is_infinite() {
        return m;
    }
    m + a.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn dot_hand_computed() {
        assert!(approx(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0));
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_scales() {
        let mut y = vec![2.0, -4.0];
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.0, -2.0]);
    }

    #[test]
    fn norm_and_distance() {
        assert!(approx(norm2(&[3.0, 4.0]), 5.0));
        assert!(approx(dist2(&[1.0, 1.0], &[4.0, 5.0]), 5.0));
    }

    #[test]
    fn mean_of_vectors_is_fedavg_aggregate() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 6.0];
        let m = mean_of([a.as_slice(), b.as_slice()]).unwrap();
        assert_eq!(m, vec![2.0, 4.0]);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert!(mean_of(std::iter::empty::<&[f64]>()).is_none());
    }

    #[test]
    fn mean_of_single_is_identity() {
        let a = vec![1.5, -2.5];
        assert_eq!(mean_of([a.as_slice()]).unwrap(), a);
    }

    #[test]
    fn mean_into_matches_mean_of_bits_and_reuses_buffer() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.3, -0.7, 10.0];
        let c = vec![5.5, 0.1, -2.0];
        let expect = mean_of([a.as_slice(), b.as_slice(), c.as_slice()]).unwrap();
        let mut out = vec![9.0; 7]; // wrong size on purpose
        assert!(mean_into(
            [a.as_slice(), b.as_slice(), c.as_slice()],
            &mut out
        ));
        assert_eq!(out.len(), 3);
        for (x, y) in out.iter().zip(&expect) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(!mean_into(std::iter::empty::<&[f64]>(), &mut out));
        assert_eq!(out.len(), 3, "empty set leaves the buffer alone");
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[0.0, 3.0, 3.0, 1.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let logits = [1000.0, 1001.0, 1002.0];
        let mut out = [0.0; 3];
        softmax_into(&logits, &mut out);
        let s: f64 = out.iter().sum();
        assert!(approx(s, 1.0));
        assert!(out[2] > out[1] && out[1] > out[0]);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_sum_exp_matches_naive_for_small_values() {
        let a = [0.1_f64, 0.2, 0.3];
        let naive = a.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!(approx(log_sum_exp(&a), naive));
    }

    #[test]
    fn log_sum_exp_stable_for_large_values() {
        let a = [1000.0, 1000.0];
        assert!(approx(log_sum_exp(&a), 1000.0 + 2.0_f64.ln()));
    }
}
