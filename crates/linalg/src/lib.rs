//! Dense linear algebra substrate for the ComFedSV reproduction.
//!
//! The paper's pipeline needs a small but complete set of dense kernels:
//!
//! * a row-major [`Matrix`] with BLAS-1/2/3 style operations ([`matrix`]),
//! * the cache-blocked, bit-deterministic GEMM family behind the
//!   minibatch model kernels and the ALS normal equations ([`gemm`]),
//! * vector kernels shared by the model/optimizer code ([`vector`]),
//! * a Cholesky SPD solver used by the ALS matrix-completion sub-problems
//!   ([`cholesky`]),
//! * Householder QR for least-squares diagnostics ([`qr`]),
//! * a one-sided Jacobi SVD used to reproduce the singular-value study of
//!   the utility matrix (paper Fig. 2) ([`svd`]),
//! * truncated-SVD based `ε`-rank estimation (paper Definition 3)
//!   ([`low_rank`]).
//!
//! Everything is `f64`, allocation-conscious, and dependency-free.

// Index-driven loops are deliberate in the numeric kernels: the loop
// variable simultaneously drives several arrays/offsets and mirrors the
// textbook formulas, which iterator chains would obscure.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod cpu;
pub mod error;
pub mod gemm;
pub mod low_rank;
pub mod matrix;
pub mod qr;
pub mod svd;
pub mod tier;
pub mod vector;

pub use cholesky::CholeskyFactor;
pub use cpu::{CpuFeatures, KernelIsa};
pub use error::LinalgError;
pub use low_rank::{eps_rank_upper_bound, truncated_reconstruction};
pub use matrix::Matrix;
pub use qr::QrFactor;
pub use svd::{singular_values, Svd};
pub use tier::DeterminismTier;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
