//! Cholesky factorization and SPD solves.
//!
//! The ALS solver for the paper's matrix-completion problem (13) repeatedly
//! solves small ridge systems `(AᵀA + λI) x = b` whose left-hand side is
//! symmetric positive definite with dimension equal to the factor rank
//! (≤ ~20). A dense Cholesky is the right tool: deterministic, fast, and
//! failure (loss of positive definiteness) is an informative error.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: Matrix,
}

impl CholeskyFactor {
    /// Factorizes a symmetric positive definite matrix.
    ///
    /// Only the lower triangle of `a` is read. Returns
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
    /// positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (n, m) = a.shape();
        if n != m {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a.get(j, j);
            for k in 0..j {
                let v = l.get(j, k);
                diag -= v * v;
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let d = diag.sqrt();
            l.set(j, j, d);
            let inv_d = 1.0 / d;
            for i in (j + 1)..n {
                let mut v = a.get(i, j);
                for k in 0..j {
                    v -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, v * inv_d);
            }
        }
        Ok(CholeskyFactor { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/backward substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            let mut v = y[i];
            for k in 0..i {
                v -= self.l.get(i, k) * y[k];
            }
            y[i] = v / self.l.get(i, i);
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut v = y[i];
            for k in (i + 1)..n {
                v -= self.l.get(k, i) * y[k];
            }
            y[i] = v / self.l.get(i, i);
        }
        Ok(y)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Ok(out)
    }
}

/// Solves the ridge-regularized normal equations `(AᵀA + λI) x = Aᵀ b`.
///
/// This is the exact sub-problem of the ALS pass over problem (13): each row
/// of `W` (resp. `H`) is the ridge solution against the observed entries of
/// its row (resp. column). `λ` must be strictly positive, which also
/// guarantees positive definiteness regardless of `A`'s rank.
pub fn ridge_solve(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if lambda <= 0.0 {
        return Err(LinalgError::InvalidDimension {
            what: "ridge lambda must be positive",
        });
    }
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "ridge_solve",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let r = a.cols();
    // Gram matrix AᵀA + λ I, built directly (r is small).
    let mut gram = Matrix::zeros(r, r);
    for i in 0..a.rows() {
        let row = a.row(i);
        for p in 0..r {
            let rp = row[p];
            if rp == 0.0 {
                continue;
            }
            for q in 0..r {
                let v = gram.get(p, q) + rp * row[q];
                gram.set(p, q, v);
            }
        }
    }
    for p in 0..r {
        let v = gram.get(p, p) + lambda;
        gram.set(p, p, v);
    }
    let rhs = a.matvec_transpose(b)?;
    CholeskyFactor::new(&gram)?.solve(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    fn spd_example() -> Matrix {
        // A = Mᵀ M + I is SPD for any M.
        let m =
            Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[2.0, 0.0, 1.0]]).unwrap();
        let mut a = m.transpose().matmul(&m).unwrap();
        for i in 0..3 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_example();
        let ch = CholeskyFactor::new(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        for (x, y) in rec.as_slice().iter().zip(a.as_slice()) {
            assert!(approx(*x, *y, 1e-10));
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd_example();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = CholeskyFactor::new(&a).unwrap().solve(&b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!(approx(*u, *v, 1e-9));
        }
    }

    #[test]
    fn solve_matrix_handles_multiple_rhs() {
        let a = spd_example();
        let x_true = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 2.0], &[-1.0, 1.0]]).unwrap();
        let b = a.matmul(&x_true).unwrap();
        let x = CholeskyFactor::new(&a).unwrap().solve_matrix(&b).unwrap();
        for (u, v) in x.as_slice().iter().zip(x_true.as_slice()) {
            assert!(approx(*u, *v, 1e-9));
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(CholeskyFactor::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        match CholeskyFactor::new(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot }) => assert_eq!(pivot, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let ch = CholeskyFactor::new(&spd_example()).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn ridge_solution_satisfies_normal_equations() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [1.0, 2.0, 2.5, 4.0];
        let lambda = 0.1;
        let x = ridge_solve(&a, &b, lambda).unwrap();
        // Check (AᵀA + λI)x = Aᵀb directly.
        let ax = a.matvec(&x).unwrap();
        let residual_grad: Vec<f64> = {
            let atax = a.matvec_transpose(&ax).unwrap();
            let atb = a.matvec_transpose(&b).unwrap();
            (0..2).map(|i| atax[i] + lambda * x[i] - atb[i]).collect()
        };
        for g in residual_grad {
            assert!(approx(g, 0.0, 1e-9));
        }
    }

    #[test]
    fn ridge_handles_rank_deficient_design() {
        // Two identical columns: ordinary least squares is singular but
        // the ridge system must still solve.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = ridge_solve(&a, &b, 1e-3).unwrap();
        // Symmetry of the problem forces x[0] == x[1].
        assert!(approx(x[0], x[1], 1e-9));
    }

    #[test]
    fn ridge_rejects_nonpositive_lambda() {
        let a = Matrix::zeros(2, 2);
        assert!(ridge_solve(&a, &[0.0, 0.0], 0.0).is_err());
        assert!(ridge_solve(&a, &[0.0, 0.0], -1.0).is_err());
    }
}
