//! Cholesky factorization and SPD solves.
//!
//! The ALS solver for the paper's matrix-completion problem (13) repeatedly
//! solves small ridge systems `(AᵀA + λI) x = b` whose left-hand side is
//! symmetric positive definite with dimension equal to the factor rank
//! (≤ ~20). A dense Cholesky is the right tool: deterministic, fast, and
//! failure (loss of positive definiteness) is an informative error.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: Matrix,
}

impl CholeskyFactor {
    /// Factorizes a symmetric positive definite matrix.
    ///
    /// Only the lower triangle of `a` is read. Returns
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
    /// positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (n, m) = a.shape();
        if n != m {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let mut l = Matrix::zeros(n, n);
        factor_lower(a, &mut l)?;
        Ok(CholeskyFactor { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/backward substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        solve_in_place(&self.l, &mut y);
        Ok(y)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Ok(out)
    }
}

/// Writes the lower-triangular Cholesky factor of `a` into `l` (which
/// must already be `n × n`; only its lower triangle is written, and the
/// strict upper triangle is assumed zero — [`Matrix::resize`] and
/// [`Matrix::zeros`] both establish that).
fn factor_lower(a: &Matrix, l: &mut Matrix) -> Result<()> {
    let n = a.rows();
    for j in 0..n {
        let mut diag = a.get(j, j);
        for k in 0..j {
            let v = l.get(j, k);
            diag -= v * v;
        }
        if diag <= 0.0 || !diag.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: j });
        }
        let d = diag.sqrt();
        l.set(j, j, d);
        let inv_d = 1.0 / d;
        for i in (j + 1)..n {
            let mut v = a.get(i, j);
            for k in 0..j {
                v -= l.get(i, k) * l.get(j, k);
            }
            l.set(i, j, v * inv_d);
        }
    }
    Ok(())
}

/// Forward/backward substitution `A x = b` with `A = L Lᵀ`, solving in
/// place over `y` (which holds `b` on entry, `x` on exit).
fn solve_in_place(l: &Matrix, y: &mut [f64]) {
    let n = l.rows();
    // Forward: L y = b.
    for i in 0..n {
        let mut v = y[i];
        for k in 0..i {
            v -= l.get(i, k) * y[k];
        }
        y[i] = v / l.get(i, i);
    }
    // Backward: Lᵀ x = y.
    for i in (0..n).rev() {
        let mut v = y[i];
        for k in (i + 1)..n {
            v -= l.get(k, i) * y[k];
        }
        y[i] = v / l.get(i, i);
    }
}

/// Reusable buffers for [`ridge_solve_into`]: the Gram matrix, its
/// Cholesky factor, and the right-hand side. One per ALS worker; grows
/// to the largest rank seen and never allocates again.
#[derive(Debug, Clone, Default)]
pub struct RidgeScratch {
    gram: Matrix,
    l: Matrix,
    rhs: Vec<f64>,
}

impl RidgeScratch {
    /// Empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        RidgeScratch::default()
    }
}

/// Solves the ridge-regularized normal equations `(AᵀA + λI) x = Aᵀ b`.
///
/// This is the exact sub-problem of the ALS pass over problem (13): each row
/// of `W` (resp. `H`) is the ridge solution against the observed entries of
/// its row (resp. column). `λ` must be strictly positive, which also
/// guarantees positive definiteness regardless of `A`'s rank.
pub fn ridge_solve(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    let mut out = vec![0.0; a.cols()];
    ridge_solve_into(a, b, lambda, &mut out, &mut RidgeScratch::new())?;
    Ok(out)
}

/// [`ridge_solve`] into a caller-provided solution slice (`a.cols()`
/// long) with reusable [`RidgeScratch`] buffers — the allocation-free
/// form the ALS half-steps call per factor row. The normal-equation
/// assembly routes through the blocked
/// [`gemm::gram_into`](crate::gemm::gram_into) kernel; per element the
/// accumulation order over `a`'s rows is unchanged from the direct
/// assembly. (Unlike the pre-scratch assembly, exact-zero terms are no
/// longer skipped: on finite inputs — which the completion problem
/// enforces at observation insert — adding a `±0.0` product can only
/// alter a sum's bits in contrived signed-zero cases that the
/// accumulators, starting from `+0.0`, do not reach; the end-to-end
/// valuation bit-equality tests pin this.)
pub fn ridge_solve_into(
    a: &Matrix,
    b: &[f64],
    lambda: f64,
    out: &mut [f64],
    scratch: &mut RidgeScratch,
) -> Result<()> {
    if lambda <= 0.0 {
        return Err(LinalgError::InvalidDimension {
            what: "ridge lambda must be positive",
        });
    }
    if a.rows() != b.len() || out.len() != a.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "ridge_solve",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let r = a.cols();
    // gram_into overwrites every entry; solve_in_place reads only the
    // lower triangle factor_lower writes — no zero-fill needed.
    scratch.gram.resize_for_overwrite(r, r);
    crate::gemm::gram_into(
        a.as_slice(),
        a.rows(),
        r,
        lambda,
        scratch.gram.as_mut_slice(),
    );
    // Right-hand side Aᵀ b, accumulated row by row (i ascending, exactly
    // the matvec_transpose order).
    scratch.rhs.clear();
    scratch.rhs.resize(r, 0.0);
    for i in 0..a.rows() {
        crate::vector::axpy(b[i], a.row(i), &mut scratch.rhs);
    }
    scratch.l.resize_for_overwrite(r, r);
    factor_lower(&scratch.gram, &mut scratch.l)?;
    out.copy_from_slice(&scratch.rhs);
    solve_in_place(&scratch.l, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    fn spd_example() -> Matrix {
        // A = Mᵀ M + I is SPD for any M.
        let m =
            Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[2.0, 0.0, 1.0]]).unwrap();
        let mut a = m.transpose().matmul(&m).unwrap();
        for i in 0..3 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_example();
        let ch = CholeskyFactor::new(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        for (x, y) in rec.as_slice().iter().zip(a.as_slice()) {
            assert!(approx(*x, *y, 1e-10));
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd_example();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = CholeskyFactor::new(&a).unwrap().solve(&b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!(approx(*u, *v, 1e-9));
        }
    }

    #[test]
    fn solve_matrix_handles_multiple_rhs() {
        let a = spd_example();
        let x_true = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 2.0], &[-1.0, 1.0]]).unwrap();
        let b = a.matmul(&x_true).unwrap();
        let x = CholeskyFactor::new(&a).unwrap().solve_matrix(&b).unwrap();
        for (u, v) in x.as_slice().iter().zip(x_true.as_slice()) {
            assert!(approx(*u, *v, 1e-9));
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(CholeskyFactor::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        match CholeskyFactor::new(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot }) => assert_eq!(pivot, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let ch = CholeskyFactor::new(&spd_example()).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn ridge_solution_satisfies_normal_equations() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [1.0, 2.0, 2.5, 4.0];
        let lambda = 0.1;
        let x = ridge_solve(&a, &b, lambda).unwrap();
        // Check (AᵀA + λI)x = Aᵀb directly.
        let ax = a.matvec(&x).unwrap();
        let residual_grad: Vec<f64> = {
            let atax = a.matvec_transpose(&ax).unwrap();
            let atb = a.matvec_transpose(&b).unwrap();
            (0..2).map(|i| atax[i] + lambda * x[i] - atb[i]).collect()
        };
        for g in residual_grad {
            assert!(approx(g, 0.0, 1e-9));
        }
    }

    #[test]
    fn ridge_handles_rank_deficient_design() {
        // Two identical columns: ordinary least squares is singular but
        // the ridge system must still solve.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = ridge_solve(&a, &b, 1e-3).unwrap();
        // Symmetry of the problem forces x[0] == x[1].
        assert!(approx(x[0], x[1], 1e-9));
    }

    #[test]
    fn ridge_solve_into_matches_allocating_form_bitwise() {
        let a = Matrix::from_rows(&[&[1.0, 0.3], &[0.2, 1.1], &[-0.5, 2.0], &[1.5, -0.4]]).unwrap();
        let b = [0.5, -1.0, 2.0, 0.25];
        let expect = ridge_solve(&a, &b, 0.05).unwrap();
        let mut scratch = RidgeScratch::new();
        let mut out = vec![0.0; 2];
        // Two calls through the same scratch: the second reuses buffers.
        for _ in 0..2 {
            ridge_solve_into(&a, &b, 0.05, &mut out, &mut scratch).unwrap();
            for (x, y) in out.iter().zip(&expect) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Wrong output length is a shape error, not a panic.
        let mut short = vec![0.0; 1];
        assert!(ridge_solve_into(&a, &b, 0.05, &mut short, &mut scratch).is_err());
    }

    #[test]
    fn ridge_rejects_nonpositive_lambda() {
        let a = Matrix::zeros(2, 2);
        assert!(ridge_solve(&a, &[0.0, 0.0], 0.0).is_err());
        assert!(ridge_solve(&a, &[0.0, 0.0], -1.0).is_err());
    }
}
