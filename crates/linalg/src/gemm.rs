//! Cache-blocked GEMM family: the allocation-free batch kernels behind
//! the minibatch model math, the ALS normal equations, and the factor
//! products.
//!
//! # The determinism contract
//!
//! Every kernel here computes each output element as **one full-length,
//! in-order sequential sum over the shared dimension** — exactly the
//! arithmetic of the naive per-element loop ([`mod@reference`]), and exactly
//! the arithmetic of the per-sample `vector::dot`/`vector::axpy` loops
//! the models used before they were batched. Blocking reorders *memory
//! traffic* (which panel of the operands is resident in cache), never
//! the floating-point reductions, so results are bit-identical to the
//! naive loops for every shape — including ragged block edges. The
//! property tests in `crates/linalg/tests/properties.rs` assert this
//! bit-for-bit on random shapes, and the repo's wider determinism
//! contract (parallel-vs-serial valuations compare equal to the bit)
//! rests on it.
//!
//! Because of that contract, none of these kernels split a *reduction*
//! across multiple accumulators (no SIMD-style partial sums within one
//! output element). The speed comes from three things that reorder
//! memory traffic only:
//!
//! * **panel blocking** — packed/transposed-`B` panels sized to stay
//!   cache-resident while every row of `A` streams past;
//! * **register blocking** — the k (or sample) loop is unrolled eight
//!   wide so each output element is loaded/stored once per eight
//!   contributions, with the adds written as one left-to-right chain
//!   (`((c + p₀) + p₁) + p₂ …`), i.e. the same reduction order;
//! * **vectorization across output elements** — the inner loops run
//!   over a contiguous span of *independent* outputs, which the
//!   compiler turns into SIMD; on x86-64 each kernel also has an
//!   AVX2-compiled instantiation selected by runtime feature detection.
//!   Lane width cannot change results: every lane is a different output
//!   element, and rustc performs no floating-point contraction (no FMA
//!   fusing), so each element's mul/add sequence is exactly the naive
//!   one.
//!
//! # Layout conventions
//!
//! All kernels operate on row-major `&[f64]` views with explicit
//! dimensions, so callers with flat parameter vectors (the models) and
//! callers with [`Matrix`](crate::Matrix) values share one code path.
//! `Matrix::matmul` and `Matrix::matmul_transpose` are thin wrappers
//! over [`gemm_nn_into`] / [`gemm_nt_into`].

use crate::vector;

/// Reusable packing buffer for the kernels that transpose a panel of
/// `B` ([`gemm_nt_into`]). Create once, pass to every call: the buffer
/// grows to the largest panel it has seen and is never shrunk, so a
/// steady-state caller performs no allocation at all.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    packed: Vec<f64>,
}

impl Scratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// Target footprint of one packed/resident `B` panel. Half of a
/// conservative 256 KiB L2: large enough to amortize packing, small
/// enough that the panel survives a full sweep of `A`'s rows.
const PANEL_BYTES: usize = 128 * 1024;

/// Number of `B` columns (or rows, for the `nt` variant) per panel for
/// a shared dimension of `k`.
#[inline]
fn panel_width(k: usize) -> usize {
    (PANEL_BYTES / (8 * k.max(1))).clamp(8, 512)
}

/// Rows per panel in the `tn` (accumulating) kernel: bounds how much of
/// `A`/`B` is touched between revisits of an output row.
const TN_ROW_PANEL: usize = 128;

/// Output columns per panel in the `tn` kernel: keeps the active slab of
/// `C` (`m × TN_COL_PANEL` doubles) and the matching `B` panel columns
/// cache-resident when `n` is wide (e.g. a 784-dim input layer's weight
/// gradient). Panelling `n` splits independent outputs only.
const TN_COL_PANEL: usize = 256;

/// `C = A · B` — `a` is `m × k`, `b` is `k × n`, `c` is `m × n`, all
/// row-major; `c` is overwritten.
///
/// The loop nest is i-k-j over panels of `b` columns: the inner loop is
/// `c[i][j] += a[i][kk] · b[kk][j]` across a contiguous run of `j` —
/// independent output accumulators, so the compiler vectorizes it, while
/// each element still accumulates `kk` in ascending order through one
/// accumulator (its slot in `c`), bit-identical to the naive dot. The
/// panel bound keeps `b[.., j0..j1]` and the active `c` row slice
/// cache-resident across the full `k` sweep.
pub fn gemm_nn_into(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the feature was just detected at runtime.
        unsafe { gemm_nn_avx2(a, b, c, m, k, n) };
        return;
    }
    gemm_nn_impl(a, b, c, m, k, n);
}

/// AVX2-compiled instantiation of [`gemm_nn_impl`] (see the module docs
/// on why wider lanes cannot change the bits).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nn_avx2(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_nn_impl(a, b, c, m, k, n);
}

#[inline(always)]
fn gemm_nn_impl(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    c.iter_mut().for_each(|v| *v = 0.0);
    let jb = panel_width(k);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + jb).min(n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n + j0..i * n + j1];
            accumulate_rows(a_row, b, n, j0, j1, c_row);
        }
        j0 = j1;
    }
}

/// `c_row[j] += Σ_kk coeffs[kk] · rows[kk·stride + j0 + j]`, `kk`
/// ascending per element. The kk loop is register-blocked eight wide:
/// each `c_row` element is loaded and stored once per eight
/// contributions, but the adds are written as one left-to-right chain —
/// `((c + p₀) + p₁) + p₂ …` — so the reduction order (and the bits)
/// match the plain one-at-a-time loop exactly.
#[inline]
fn accumulate_rows(
    coeffs: &[f64],
    rows: &[f64],
    stride: usize,
    j0: usize,
    j1: usize,
    c_row: &mut [f64],
) {
    debug_assert_eq!(c_row.len(), j1 - j0);
    let k = coeffs.len();
    let row = |kk: usize| &rows[kk * stride + j0..kk * stride + j1];
    let mut kk = 0;
    while kk + 8 <= k {
        let a: [f64; 8] = coeffs[kk..kk + 8].try_into().expect("length 8");
        let (b0, b1, b2, b3) = (row(kk), row(kk + 1), row(kk + 2), row(kk + 3));
        let (b4, b5, b6, b7) = (row(kk + 4), row(kk + 5), row(kk + 6), row(kk + 7));
        for (j, cv) in c_row.iter_mut().enumerate() {
            // Slices all have c_row's length; LLVM hoists the bounds
            // checks and vectorizes across j.
            let s = *cv + a[0] * b0[j];
            let s = s + a[1] * b1[j];
            let s = s + a[2] * b2[j];
            let s = s + a[3] * b3[j];
            let s = s + a[4] * b4[j];
            let s = s + a[5] * b5[j];
            let s = s + a[6] * b6[j];
            *cv = s + a[7] * b7[j];
        }
        kk += 8;
    }
    while kk < k {
        vector::axpy(coeffs[kk], row(kk), c_row);
        kk += 1;
    }
}

/// `C = A · Bᵀ` — `a` is `m × k`, `b` is `n × k`, `c` is `m × n`, all
/// row-major; `c` is overwritten. The models' forward passes
/// (`X · Wᵀ` with `W` stored `out × in`) and the factor product `W Hᵀ`
/// land here.
///
/// Each panel of `b` rows is packed (transposed) into `scratch` once —
/// `packed[kk][jj] = b[j0 + jj][kk]` — and reused across all `m` rows
/// of `a`, turning the computation into the vectorizable i-k-j nest of
/// [`gemm_nn_into`]. The packing is a pure copy; `c[i][j]` is still one
/// in-order sum over `k`.
pub fn gemm_nt_into(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Scratch,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the feature was just detected at runtime.
        unsafe { gemm_nt_avx2(a, b, c, m, k, n, scratch) };
        return;
    }
    gemm_nt_impl(a, b, c, m, k, n, scratch);
}

/// AVX2-compiled instantiation of [`gemm_nt_impl`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nt_avx2(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Scratch,
) {
    gemm_nt_impl(a, b, c, m, k, n, scratch);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_nt_impl(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Scratch,
) {
    c.iter_mut().for_each(|v| *v = 0.0);
    // Cap the panel at n: a narrow product must not size (and zero) the
    // packing buffer for columns that do not exist.
    let jb = panel_width(k).min(n.max(1));
    if scratch.packed.len() < jb * k {
        scratch.packed.resize(jb * k, 0.0);
    }
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + jb).min(n);
        let w = j1 - j0;
        // Pack rows j0..j1 of b transposed: packed[kk][jj] = b[j0+jj][kk].
        for jj in 0..w {
            for (kk, &v) in b[(j0 + jj) * k..(j0 + jj + 1) * k].iter().enumerate() {
                scratch.packed[kk * w + jj] = v;
            }
        }
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n + j0..i * n + j1];
            accumulate_rows(a_row, &scratch.packed[..k * w], w, 0, w, c_row);
        }
        j0 = j1;
    }
}

/// `C += Aᵀ · B` — `a` is `l × m`, `b` is `l × n`, `c` is `m × n`, all
/// row-major; `c` accumulates.
///
/// `c[p][q] += Σ_i a[i][p] · b[i][q]` with `i` strictly ascending per
/// element — the batched form of "for each sample, `axpy` its
/// contribution into the gradient", bit-identical to that per-sample
/// loop. `l` is panelled so each output row is
/// revisited while the `a`/`b` panel is still resident, and wide `n` is
/// panelled so the active `C` slab stays cache-resident; panels are
/// processed in ascending order, preserving the per-element sum order.
pub fn gemm_tn_acc(a: &[f64], b: &[f64], c: &mut [f64], l: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), l * m);
    debug_assert_eq!(b.len(), l * n);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the feature was just detected at runtime.
        unsafe { gemm_tn_avx2(a, b, c, l, m, n) };
        return;
    }
    gemm_tn_impl(a, b, c, l, m, n);
}

/// AVX2-compiled instantiation of [`gemm_tn_impl`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_tn_avx2(a: &[f64], b: &[f64], c: &mut [f64], l: usize, m: usize, n: usize) {
    gemm_tn_impl(a, b, c, l, m, n);
}

#[inline(always)]
fn gemm_tn_impl(a: &[f64], b: &[f64], c: &mut [f64], l: usize, m: usize, n: usize) {
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + TN_COL_PANEL).min(n);
        let mut i0 = 0;
        while i0 < l {
            let i1 = (i0 + TN_ROW_PANEL).min(l);
            for p in 0..m {
                let c_row = &mut c[p * n + j0..p * n + j1];
                // Register-blocked over samples: c_row is loaded/stored
                // once per eight contributions, adds in strict
                // i-ascending order (per element, across panels too) —
                // bit-identical to one axpy per i.
                let brow = |i: usize| &b[i * n + j0..i * n + j1];
                let mut i = i0;
                while i + 8 <= i1 {
                    let mut ai = [0.0f64; 8];
                    for (u, av) in ai.iter_mut().enumerate() {
                        *av = a[(i + u) * m + p];
                    }
                    let (b0, b1, b2, b3) = (brow(i), brow(i + 1), brow(i + 2), brow(i + 3));
                    let (b4, b5, b6, b7) = (brow(i + 4), brow(i + 5), brow(i + 6), brow(i + 7));
                    for (j, cv) in c_row.iter_mut().enumerate() {
                        let s = *cv + ai[0] * b0[j];
                        let s = s + ai[1] * b1[j];
                        let s = s + ai[2] * b2[j];
                        let s = s + ai[3] * b3[j];
                        let s = s + ai[4] * b4[j];
                        let s = s + ai[5] * b5[j];
                        let s = s + ai[6] * b6[j];
                        *cv = s + ai[7] * b7[j];
                    }
                    i += 8;
                }
                while i < i1 {
                    vector::axpy(a[i * m + p], brow(i), c_row);
                    i += 1;
                }
            }
            i0 = i1;
        }
        j0 = j1;
    }
}

/// Adds `bias` to every row of the `rows × cols` matrix `c` — the fused
/// epilogue of a forward pass (`logits = dot + bias`, one addition per
/// element, applied after the full dot like the per-sample code did).
pub fn add_bias_rows(c: &mut [f64], cols: usize, bias: &[f64]) {
    debug_assert_eq!(bias.len(), cols);
    debug_assert_eq!(c.len() % cols.max(1), 0);
    for row in c.chunks_exact_mut(cols) {
        for (cv, &bv) in row.iter_mut().zip(bias) {
            *cv += bv;
        }
    }
}

/// Accumulates column sums: `out[j] += Σ_i a[i][j]`, `i` ascending —
/// the batched bias gradient.
pub fn col_sums_acc(a: &[f64], cols: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), cols);
    debug_assert_eq!(a.len() % cols.max(1), 0);
    for row in a.chunks_exact(cols) {
        vector::axpy(1.0, row, out);
    }
}

/// Ridge Gram matrix `G = AᵀA + λI` — `a` is `m × r`, `out` is `r × r`,
/// overwritten. The assembly half of the ALS normal equations, routed
/// through [`gemm_tn_acc`] (per element: `i` ascending over `a`'s rows,
/// `λ` added to the diagonal afterwards — the order the unblocked
/// assembly used).
pub fn gram_into(a: &[f64], m: usize, r: usize, lambda: f64, out: &mut [f64]) {
    debug_assert_eq!(out.len(), r * r);
    out.iter_mut().for_each(|v| *v = 0.0);
    gemm_tn_acc(a, a, out, m, r, r);
    for p in 0..r {
        out[p * r + p] += lambda;
    }
}

/// Unblocked reference kernels: the semantic spec the blocked family is
/// tested against (bit-for-bit, see `tests/properties.rs`). Retained as
/// plain per-element loops on purpose — slow, obviously correct.
pub mod reference {
    use crate::vector;

    /// `C = A · B`, per element one in-order dot over `k`.
    pub fn gemm_nn(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
    }

    /// `C = A · Bᵀ`, per element one in-order dot over `k`.
    pub fn gemm_nt(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                c[i * n + j] = vector::dot(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
            }
        }
    }

    /// `C += Aᵀ · B`, per element `i` ascending.
    pub fn gemm_tn_acc(a: &[f64], b: &[f64], c: &mut [f64], l: usize, m: usize, n: usize) {
        for i in 0..l {
            for p in 0..m {
                for q in 0..n {
                    c[p * n + q] += a[i * m + p] * b[i * n + q];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (xorshift-ish; no rand dep here).
    fn fill(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn nt_matches_reference_bits_on_ragged_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 33, 9),
            (5, 600, 13),
            (64, 7, 530),
        ] {
            let a = fill(m as u64 * 31 + k as u64, m * k);
            let b = fill(n as u64 * 17 + 3, n * k);
            let mut fast = vec![0.0; m * n];
            let mut slow = vec![1.0; m * n];
            let mut scratch = Scratch::new();
            gemm_nt_into(&a, &b, &mut fast, m, k, n, &mut scratch);
            reference::gemm_nt(&a, &b, &mut slow, m, k, n);
            for (x, y) in fast.iter().zip(&slow) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn nn_matches_reference_bits_on_ragged_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (4, 6, 5), (9, 520, 11), (30, 3, 700)] {
            let a = fill(m as u64 + 7, m * k);
            let b = fill(k as u64 + 11, k * n);
            let mut fast = vec![0.0; m * n];
            let mut slow = vec![2.0; m * n];
            gemm_nn_into(&a, &b, &mut fast, m, k, n);
            reference::gemm_nn(&a, &b, &mut slow, m, k, n);
            for (x, y) in fast.iter().zip(&slow) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn tn_acc_matches_reference_bits_and_accumulates() {
        for &(l, m, n) in &[(1, 1, 1), (5, 3, 4), (300, 6, 9), (129, 2, 2)] {
            let a = fill(l as u64 * 3, l * m);
            let b = fill(l as u64 * 5 + 1, l * n);
            let init = fill(9, m * n);
            let mut fast = init.clone();
            let mut slow = init;
            gemm_tn_acc(&a, &b, &mut fast, l, m, n);
            reference::gemm_tn_acc(&a, &b, &mut slow, l, m, n);
            for (x, y) in fast.iter().zip(&slow) {
                assert_eq!(x.to_bits(), y.to_bits(), "({l},{m},{n})");
            }
        }
    }

    #[test]
    fn bias_and_col_sums_match_hand_loops() {
        let a = fill(1, 4 * 3);
        let bias = fill(2, 3);
        let mut c = a.clone();
        add_bias_rows(&mut c, 3, &bias);
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(c[i * 3 + j].to_bits(), (a[i * 3 + j] + bias[j]).to_bits());
            }
        }
        let mut sums = vec![0.5; 3];
        let mut expect = sums.clone();
        col_sums_acc(&a, 3, &mut sums);
        for i in 0..4 {
            for j in 0..3 {
                expect[j] += a[i * 3 + j];
            }
        }
        for (x, y) in sums.iter().zip(&expect) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn gram_matches_unblocked_assembly() {
        let (m, r) = (23, 4);
        let a = fill(5, m * r);
        let lambda = 0.37;
        let mut fast = vec![0.0; r * r];
        gram_into(&a, m, r, lambda, &mut fast);
        // The pre-refactor assembly: i outer, per-element i ascending,
        // lambda added after.
        let mut slow = vec![0.0; r * r];
        for i in 0..m {
            let row = &a[i * r..(i + 1) * r];
            for p in 0..r {
                for q in 0..r {
                    slow[p * r + q] += row[p] * row[q];
                }
            }
        }
        for p in 0..r {
            slow[p * r + p] += lambda;
        }
        for (x, y) in fast.iter().zip(&slow) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn scratch_is_reused_across_shapes() {
        let mut scratch = Scratch::new();
        let a = fill(1, 6 * 520);
        let b = fill(2, 9 * 520);
        let mut c = vec![0.0; 6 * 9];
        gemm_nt_into(&a, &b, &mut c, 6, 520, 9, &mut scratch);
        let cap = scratch.packed.capacity();
        // A smaller problem must not grow the buffer.
        let a2 = fill(3, 2 * 8);
        let b2 = fill(4, 3 * 8);
        let mut c2 = vec![0.0; 2 * 3];
        gemm_nt_into(&a2, &b2, &mut c2, 2, 8, 3, &mut scratch);
        assert_eq!(scratch.packed.capacity(), cap);
    }
}
