//! Cache-blocked GEMM family: the allocation-free batch kernels behind
//! the minibatch model math, the ALS normal equations, and the factor
//! products.
//!
//! # The determinism contract
//!
//! Every kernel here computes each output element as **one full-length,
//! in-order sequential sum over the shared dimension** — exactly the
//! arithmetic of the naive per-element loop ([`mod@reference`]), and exactly
//! the arithmetic of the per-sample `vector::dot`/`vector::axpy` loops
//! the models used before they were batched. Blocking reorders *memory
//! traffic* (which panel of the operands is resident in cache), never
//! the floating-point reductions, so results are bit-identical to the
//! naive loops for every shape — including ragged block edges. The
//! property tests in `crates/linalg/tests/properties.rs` assert this
//! bit-for-bit on random shapes, and the repo's wider determinism
//! contract (parallel-vs-serial valuations compare equal to the bit)
//! rests on it.
//!
//! Because of that contract, none of these kernels split a *reduction*
//! across multiple accumulators (no SIMD-style partial sums within one
//! output element). The speed comes from three things that reorder
//! memory traffic only:
//!
//! * **panel blocking** — packed/transposed-`B` panels sized to stay
//!   cache-resident while every row of `A` streams past;
//! * **register blocking** — the k (or sample) loop is unrolled eight
//!   wide so each output element is loaded/stored once per eight
//!   contributions, with the adds written as one left-to-right chain
//!   (`((c + p₀) + p₁) + p₂ …`), i.e. the same reduction order;
//! * **vectorization across output elements** — the inner loops run
//!   over a contiguous span of *independent* outputs, which the
//!   compiler turns into SIMD; on x86-64 each kernel also has an
//!   AVX2-compiled instantiation selected by runtime feature detection.
//!   Lane width cannot change results: every lane is a different output
//!   element, and rustc performs no floating-point contraction (no FMA
//!   fusing), so each element's mul/add sequence is exactly the naive
//!   one.
//!
//! # The `Fast` tier
//!
//! Each of the three GEMMs also has a *tiered* entry point
//! ([`gemm_nn_tiered`], [`gemm_nt_tiered`], [`gemm_tn_acc_tiered`])
//! taking a [`DeterminismTier`]. `BitExact` delegates to the contract
//! kernels above. `Fast` — when runtime FMA support is detected
//! ([`cpu::kernel_isa`](crate::cpu::kernel_isa)) — runs FMA-fused
//! instantiations whose 8-term register blocks accumulate through **two
//! interleaved partial chains** (even/odd terms) combined at the end,
//! breaking the sequential-add dependency chain. The result differs from
//! the bit-exact reference by at most [`fast_epsilon`] per output
//! element; the `Fast` ordering itself is fixed, so the tier is still
//! deterministic run-to-run on one machine.
//!
//! # Layout conventions
//!
//! All kernels operate on row-major `&[f64]` views with explicit
//! dimensions, so callers with flat parameter vectors (the models) and
//! callers with [`Matrix`](crate::Matrix) values share one code path.
//! `Matrix::matmul` and `Matrix::matmul_transpose` are thin wrappers
//! over [`gemm_nn_into`] / [`gemm_nt_into`].

#[cfg(target_arch = "x86_64")]
use crate::cpu::KernelIsa;
use crate::tier::DeterminismTier;
use crate::vector;

/// Reusable packing buffer for the kernels that transpose a panel of
/// `B` ([`gemm_nt_into`]). Create once, pass to every call: the buffer
/// grows to the largest panel it has seen and is never shrunk, so a
/// steady-state caller performs no allocation at all.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    packed: Vec<f64>,
}

impl Scratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// Target footprint of one packed/resident `B` panel. Half of a
/// conservative 256 KiB L2: large enough to amortize packing, small
/// enough that the panel survives a full sweep of `A`'s rows.
const PANEL_BYTES: usize = 128 * 1024;

/// Number of `B` columns (or rows, for the `nt` variant) per panel for
/// a shared dimension of `k`.
#[inline]
fn panel_width(k: usize) -> usize {
    (PANEL_BYTES / (8 * k.max(1))).clamp(8, 512)
}

/// Rows per panel in the `tn` (accumulating) kernel: bounds how much of
/// `A`/`B` is touched between revisits of an output row.
const TN_ROW_PANEL: usize = 128;

/// Output columns per panel in the `tn` kernel: keeps the active slab of
/// `C` (`m × TN_COL_PANEL` doubles) and the matching `B` panel columns
/// cache-resident when `n` is wide (e.g. a 784-dim input layer's weight
/// gradient). Panelling `n` splits independent outputs only.
const TN_COL_PANEL: usize = 256;

/// `C = A · B` — `a` is `m × k`, `b` is `k × n`, `c` is `m × n`, all
/// row-major; `c` is overwritten.
///
/// The loop nest is i-k-j over panels of `b` columns: the inner loop is
/// `c[i][j] += a[i][kk] · b[kk][j]` across a contiguous run of `j` —
/// independent output accumulators, so the compiler vectorizes it, while
/// each element still accumulates `kk` in ascending order through one
/// accumulator (its slot in `c`), bit-identical to the naive dot. The
/// panel bound keeps `b[.., j0..j1]` and the active `c` row slice
/// cache-resident across the full `k` sweep.
pub fn gemm_nn_into(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if crate::cpu::features().avx2 {
        // SAFETY: the feature was detected at runtime (cached probe).
        unsafe { gemm_nn_avx2(a, b, c, m, k, n) };
        return;
    }
    gemm_nn_impl(a, b, c, m, k, n);
}

/// AVX2-compiled instantiation of [`gemm_nn_impl`] (see the module docs
/// on why wider lanes cannot change the bits).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nn_avx2(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_nn_impl(a, b, c, m, k, n);
}

#[inline(always)]
fn gemm_nn_impl(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    c.iter_mut().for_each(|v| *v = 0.0);
    let jb = panel_width(k);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + jb).min(n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n + j0..i * n + j1];
            accumulate_rows(a_row, b, n, j0, j1, c_row);
        }
        j0 = j1;
    }
}

/// `c_row[j] += Σ_kk coeffs[kk] · rows[kk·stride + j0 + j]`, `kk`
/// ascending per element. The kk loop is register-blocked eight wide:
/// each `c_row` element is loaded and stored once per eight
/// contributions, but the adds are written as one left-to-right chain —
/// `((c + p₀) + p₁) + p₂ …` — so the reduction order (and the bits)
/// match the plain one-at-a-time loop exactly.
#[inline]
fn accumulate_rows(
    coeffs: &[f64],
    rows: &[f64],
    stride: usize,
    j0: usize,
    j1: usize,
    c_row: &mut [f64],
) {
    debug_assert_eq!(c_row.len(), j1 - j0);
    let k = coeffs.len();
    let row = |kk: usize| &rows[kk * stride + j0..kk * stride + j1];
    let mut kk = 0;
    while kk + 8 <= k {
        let a: [f64; 8] = coeffs[kk..kk + 8].try_into().expect("length 8");
        let (b0, b1, b2, b3) = (row(kk), row(kk + 1), row(kk + 2), row(kk + 3));
        let (b4, b5, b6, b7) = (row(kk + 4), row(kk + 5), row(kk + 6), row(kk + 7));
        for (j, cv) in c_row.iter_mut().enumerate() {
            // Slices all have c_row's length; LLVM hoists the bounds
            // checks and vectorizes across j.
            let s = *cv + a[0] * b0[j];
            let s = s + a[1] * b1[j];
            let s = s + a[2] * b2[j];
            let s = s + a[3] * b3[j];
            let s = s + a[4] * b4[j];
            let s = s + a[5] * b5[j];
            let s = s + a[6] * b6[j];
            *cv = s + a[7] * b7[j];
        }
        kk += 8;
    }
    while kk < k {
        vector::axpy(coeffs[kk], row(kk), c_row);
        kk += 1;
    }
}

/// `C = A · Bᵀ` — `a` is `m × k`, `b` is `n × k`, `c` is `m × n`, all
/// row-major; `c` is overwritten. The models' forward passes
/// (`X · Wᵀ` with `W` stored `out × in`) and the factor product `W Hᵀ`
/// land here.
///
/// Each panel of `b` rows is packed (transposed) into `scratch` once —
/// `packed[kk][jj] = b[j0 + jj][kk]` — and reused across all `m` rows
/// of `a`, turning the computation into the vectorizable i-k-j nest of
/// [`gemm_nn_into`]. The packing is a pure copy; `c[i][j]` is still one
/// in-order sum over `k`.
pub fn gemm_nt_into(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Scratch,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if crate::cpu::features().avx2 {
        // SAFETY: the feature was detected at runtime (cached probe).
        unsafe { gemm_nt_avx2(a, b, c, m, k, n, scratch) };
        return;
    }
    gemm_nt_impl(a, b, c, m, k, n, scratch);
}

/// AVX2-compiled instantiation of [`gemm_nt_impl`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nt_avx2(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Scratch,
) {
    gemm_nt_impl(a, b, c, m, k, n, scratch);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_nt_impl(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Scratch,
) {
    c.iter_mut().for_each(|v| *v = 0.0);
    // Cap the panel at n: a narrow product must not size (and zero) the
    // packing buffer for columns that do not exist.
    let jb = panel_width(k).min(n.max(1));
    if scratch.packed.len() < jb * k {
        scratch.packed.resize(jb * k, 0.0);
    }
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + jb).min(n);
        let w = j1 - j0;
        // Pack rows j0..j1 of b transposed: packed[kk][jj] = b[j0+jj][kk].
        for jj in 0..w {
            for (kk, &v) in b[(j0 + jj) * k..(j0 + jj + 1) * k].iter().enumerate() {
                scratch.packed[kk * w + jj] = v;
            }
        }
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n + j0..i * n + j1];
            accumulate_rows(a_row, &scratch.packed[..k * w], w, 0, w, c_row);
        }
        j0 = j1;
    }
}

/// `C += Aᵀ · B` — `a` is `l × m`, `b` is `l × n`, `c` is `m × n`, all
/// row-major; `c` accumulates.
///
/// `c[p][q] += Σ_i a[i][p] · b[i][q]` with `i` strictly ascending per
/// element — the batched form of "for each sample, `axpy` its
/// contribution into the gradient", bit-identical to that per-sample
/// loop. `l` is panelled so each output row is
/// revisited while the `a`/`b` panel is still resident, and wide `n` is
/// panelled so the active `C` slab stays cache-resident; panels are
/// processed in ascending order, preserving the per-element sum order.
pub fn gemm_tn_acc(a: &[f64], b: &[f64], c: &mut [f64], l: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), l * m);
    debug_assert_eq!(b.len(), l * n);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if crate::cpu::features().avx2 {
        // SAFETY: the feature was detected at runtime (cached probe).
        unsafe { gemm_tn_avx2(a, b, c, l, m, n) };
        return;
    }
    gemm_tn_impl(a, b, c, l, m, n);
}

/// AVX2-compiled instantiation of [`gemm_tn_impl`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_tn_avx2(a: &[f64], b: &[f64], c: &mut [f64], l: usize, m: usize, n: usize) {
    gemm_tn_impl(a, b, c, l, m, n);
}

#[inline(always)]
fn gemm_tn_impl(a: &[f64], b: &[f64], c: &mut [f64], l: usize, m: usize, n: usize) {
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + TN_COL_PANEL).min(n);
        let mut i0 = 0;
        while i0 < l {
            let i1 = (i0 + TN_ROW_PANEL).min(l);
            for p in 0..m {
                let c_row = &mut c[p * n + j0..p * n + j1];
                // Register-blocked over samples: c_row is loaded/stored
                // once per eight contributions, adds in strict
                // i-ascending order (per element, across panels too) —
                // bit-identical to one axpy per i.
                let brow = |i: usize| &b[i * n + j0..i * n + j1];
                let mut i = i0;
                while i + 8 <= i1 {
                    let mut ai = [0.0f64; 8];
                    for (u, av) in ai.iter_mut().enumerate() {
                        *av = a[(i + u) * m + p];
                    }
                    let (b0, b1, b2, b3) = (brow(i), brow(i + 1), brow(i + 2), brow(i + 3));
                    let (b4, b5, b6, b7) = (brow(i + 4), brow(i + 5), brow(i + 6), brow(i + 7));
                    for (j, cv) in c_row.iter_mut().enumerate() {
                        let s = *cv + ai[0] * b0[j];
                        let s = s + ai[1] * b1[j];
                        let s = s + ai[2] * b2[j];
                        let s = s + ai[3] * b3[j];
                        let s = s + ai[4] * b4[j];
                        let s = s + ai[5] * b5[j];
                        let s = s + ai[6] * b6[j];
                        *cv = s + ai[7] * b7[j];
                    }
                    i += 8;
                }
                while i < i1 {
                    vector::axpy(a[i * m + p], brow(i), c_row);
                    i += 1;
                }
            }
            i0 = i1;
        }
        j0 = j1;
    }
}

/// Adds `bias` to every row of the `rows × cols` matrix `c` — the fused
/// epilogue of a forward pass (`logits = dot + bias`, one addition per
/// element, applied after the full dot like the per-sample code did).
pub fn add_bias_rows(c: &mut [f64], cols: usize, bias: &[f64]) {
    debug_assert_eq!(bias.len(), cols);
    debug_assert_eq!(c.len() % cols.max(1), 0);
    for row in c.chunks_exact_mut(cols) {
        for (cv, &bv) in row.iter_mut().zip(bias) {
            *cv += bv;
        }
    }
}

/// Accumulates column sums: `out[j] += Σ_i a[i][j]`, `i` ascending —
/// the batched bias gradient.
pub fn col_sums_acc(a: &[f64], cols: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), cols);
    debug_assert_eq!(a.len() % cols.max(1), 0);
    for row in a.chunks_exact(cols) {
        vector::axpy(1.0, row, out);
    }
}

/// Ridge Gram matrix `G = AᵀA + λI` — `a` is `m × r`, `out` is `r × r`,
/// overwritten. The assembly half of the ALS normal equations, routed
/// through [`gemm_tn_acc`] (per element: `i` ascending over `a`'s rows,
/// `λ` added to the diagonal afterwards — the order the unblocked
/// assembly used).
pub fn gram_into(a: &[f64], m: usize, r: usize, lambda: f64, out: &mut [f64]) {
    debug_assert_eq!(out.len(), r * r);
    out.iter_mut().for_each(|v| *v = 0.0);
    gemm_tn_acc(a, a, out, m, r, r);
    for p in 0..r {
        out[p * r + p] += lambda;
    }
}

// ---------------------------------------------------------------------
// Tiered entry points and the Fast (FMA, reduction-reordered) family.
// ---------------------------------------------------------------------

/// Per-element error bound between a `Fast`-tier reduction and the
/// bit-exact reference: for an output element accumulated over `depth`
/// multiply–add terms whose absolute-value sum is at most `magnitude`
/// (`Σᵢ |aᵢ·bᵢ| ≤ magnitude`),
///
/// ```text
/// |fast − bit_exact| ≤ fast_epsilon(depth, magnitude)
///                    = 2 · (depth + 2) · ε_f64 · magnitude
/// ```
///
/// Derivation: recursive summation of `depth` products has forward error
/// at most `γ_depth · Σ|aᵢbᵢ|` with `γ_k ≈ k·ε` (Higham, *Accuracy and
/// Stability of Numerical Algorithms*, §3.1); the `Fast` ordering
/// (two interleaved FMA chains, pairwise combine) satisfies the same
/// bound with fewer roundings, so the *difference* of the two computed
/// values is at most twice the bound. The `+2` covers the final
/// pairwise combine and a fused bias/accumulate term. This is the ε the
/// property tests and the bench harness assert.
pub fn fast_epsilon(depth: usize, magnitude: f64) -> f64 {
    2.0 * (depth as f64 + 2.0) * f64::EPSILON * magnitude
}

/// `C = A · B` at the requested [`DeterminismTier`].
///
/// `BitExact` is [`gemm_nn_into`]. `Fast` runs the FMA-fused,
/// reduction-reordered instantiation when the CPU supports it
/// ([`cpu::kernel_isa`](crate::cpu::kernel_isa)); each output element is
/// then within [`fast_epsilon`]`(k, Σ|a·b|)` of the bit-exact value.
pub fn gemm_nn_tiered(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    tier: DeterminismTier,
) {
    if tier == DeterminismTier::Fast {
        #[cfg(target_arch = "x86_64")]
        match crate::cpu::kernel_isa(tier) {
            // SAFETY: kernel_isa only returns FMA variants when the
            // matching features were detected at runtime.
            KernelIsa::Avx512Fma => {
                unsafe { gemm_nn_fast_avx512(a, b, c, m, k, n) };
                return;
            }
            KernelIsa::Avx2Fma => {
                unsafe { gemm_nn_fast_avx2(a, b, c, m, k, n) };
                return;
            }
            _ => {}
        }
    }
    gemm_nn_into(a, b, c, m, k, n);
}

/// `C = A · Bᵀ` at the requested [`DeterminismTier`] (see
/// [`gemm_nt_into`] for layout and [`gemm_nn_tiered`] for the tier
/// semantics).
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_tiered(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Scratch,
    tier: DeterminismTier,
) {
    if tier == DeterminismTier::Fast {
        #[cfg(target_arch = "x86_64")]
        match crate::cpu::kernel_isa(tier) {
            // SAFETY: features detected at runtime (see kernel_isa).
            KernelIsa::Avx512Fma => {
                unsafe { gemm_nt_fast_avx512(a, b, c, m, k, n, scratch) };
                return;
            }
            KernelIsa::Avx2Fma => {
                unsafe { gemm_nt_fast_avx2(a, b, c, m, k, n, scratch) };
                return;
            }
            _ => {}
        }
    }
    gemm_nt_into(a, b, c, m, k, n, scratch);
}

/// `C += Aᵀ · B` at the requested [`DeterminismTier`] (see
/// [`gemm_tn_acc`] for layout and [`gemm_nn_tiered`] for the tier
/// semantics; in `Fast`, each element's sum over `l` reorders within
/// 8-sample register blocks).
pub fn gemm_tn_acc_tiered(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    l: usize,
    m: usize,
    n: usize,
    tier: DeterminismTier,
) {
    if tier == DeterminismTier::Fast {
        #[cfg(target_arch = "x86_64")]
        match crate::cpu::kernel_isa(tier) {
            // SAFETY: features detected at runtime (see kernel_isa).
            KernelIsa::Avx512Fma => {
                unsafe { gemm_tn_fast_avx512(a, b, c, l, m, n) };
                return;
            }
            KernelIsa::Avx2Fma => {
                unsafe { gemm_tn_fast_avx2(a, b, c, l, m, n) };
                return;
            }
            _ => {}
        }
    }
    gemm_tn_acc(a, b, c, l, m, n);
}

/// Padded register width for the small-shape `Fast` kernels: the
/// smallest of {4, 8, 16} that holds `n` output columns, so the
/// accumulator row is exactly one (or two) SIMD registers.
#[inline(always)]
fn small_reg_width(n: usize) -> usize {
    if n <= 4 {
        4
    } else if n <= 8 {
        8
    } else {
        16
    }
}

/// Small-`n` `Fast` kernel for `C = A · Bᵀ` (`n ≤ 16`): the whole output
/// row fits in registers, so each row of `A` streams once through a
/// register-resident accumulator — one broadcast-FMA per shared-dim
/// step — instead of the panel kernel's load/store-per-block pattern.
/// This is what makes tiny products (a conv's `9 → filters` contraction,
/// a narrow classifier head) run at vector speed. `bt` is `B` packed
/// `k × NR` row-major, zero-padded beyond column `n`; each element is
/// one in-order `mul_add` chain over `k`, within [`fast_epsilon`].
#[inline(always)]
fn gemm_small_n_fast<const NR: usize>(
    a: &[f64],
    bt: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert!(n <= NR);
    debug_assert_eq!(bt.len(), k * NR);
    let brow =
        |kk: usize| -> &[f64; NR] { bt[kk * NR..(kk + 1) * NR].try_into().expect("width NR") };
    // 4-row register tile, each element two interleaved chains
    // (even/odd shared-dim steps, combined pairwise at the end — the
    // documented Fast ordering): eight independent FMA chains in flight,
    // so tiny-k products are throughput-bound instead of serialized on
    // FMA latency. Accumulators are named locals and the inner loop is
    // one flat `j` sweep so LLVM register-allocates the whole tile.
    let mut i = 0;
    while i + 4 <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let mut e0 = [0.0f64; NR];
        let mut e1 = [0.0f64; NR];
        let mut e2 = [0.0f64; NR];
        let mut e3 = [0.0f64; NR];
        let mut o0 = [0.0f64; NR];
        let mut o1 = [0.0f64; NR];
        let mut o2 = [0.0f64; NR];
        let mut o3 = [0.0f64; NR];
        let mut kk = 0;
        while kk + 2 <= k {
            let (b0, b1) = (brow(kk), brow(kk + 1));
            let (x0, y0) = (a0[kk], a0[kk + 1]);
            let (x1, y1) = (a1[kk], a1[kk + 1]);
            let (x2, y2) = (a2[kk], a2[kk + 1]);
            let (x3, y3) = (a3[kk], a3[kk + 1]);
            for j in 0..NR {
                e0[j] = x0.mul_add(b0[j], e0[j]);
                o0[j] = y0.mul_add(b1[j], o0[j]);
                e1[j] = x1.mul_add(b0[j], e1[j]);
                o1[j] = y1.mul_add(b1[j], o1[j]);
                e2[j] = x2.mul_add(b0[j], e2[j]);
                o2[j] = y2.mul_add(b1[j], o2[j]);
                e3[j] = x3.mul_add(b0[j], e3[j]);
                o3[j] = y3.mul_add(b1[j], o3[j]);
            }
            kk += 2;
        }
        if kk < k {
            let b0 = brow(kk);
            let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
            for j in 0..NR {
                e0[j] = x0.mul_add(b0[j], e0[j]);
                e1[j] = x1.mul_add(b0[j], e1[j]);
                e2[j] = x2.mul_add(b0[j], e2[j]);
                e3[j] = x3.mul_add(b0[j], e3[j]);
            }
        }
        for (r, (ev, od)) in [(&e0, &o0), (&e1, &o1), (&e2, &o2), (&e3, &o3)]
            .into_iter()
            .enumerate()
        {
            let c_row = &mut c[(i + r) * n..(i + r + 1) * n];
            for (cv, (&x, &y)) in c_row.iter_mut().zip(ev.iter().zip(od)) {
                *cv = x + y;
            }
        }
        i += 4;
    }
    while i < m {
        let a_row = &a[i * k..(i + 1) * k];
        let mut even = [0.0f64; NR];
        let mut odd = [0.0f64; NR];
        let mut kk = 0;
        while kk + 2 <= k {
            let (av0, av1) = (a_row[kk], a_row[kk + 1]);
            let (b0, b1) = (brow(kk), brow(kk + 1));
            for j in 0..NR {
                even[j] = av0.mul_add(b0[j], even[j]);
                odd[j] = av1.mul_add(b1[j], odd[j]);
            }
            kk += 2;
        }
        if kk < k {
            let av = a_row[kk];
            let b0 = brow(kk);
            for j in 0..NR {
                even[j] = av.mul_add(b0[j], even[j]);
            }
        }
        for (cv, (&x, &y)) in c[i * n..(i + 1) * n].iter_mut().zip(even.iter().zip(&odd)) {
            *cv = x + y;
        }
        i += 1;
    }
}

/// Packs `b` (`n × k` row-major) transposed into `scratch` as `k × NR`
/// with zero padding, the layout [`gemm_small_n_fast`] consumes.
#[inline(always)]
fn pack_bt_small(b: &[f64], k: usize, n: usize, nr: usize, scratch: &mut Scratch) {
    if scratch.packed.len() < k * nr {
        scratch.packed.resize(k * nr, 0.0);
    }
    for kk in 0..k {
        let row = &mut scratch.packed[kk * nr..(kk + 1) * nr];
        for (j, rv) in row.iter_mut().enumerate() {
            *rv = if j < n { b[j * k + kk] } else { 0.0 };
        }
    }
}

/// Loads `src` into a zero-padded `[f64; NR]` without a runtime-length
/// copy (LLVM turns those into memcpy libcalls, and a call inside the
/// accumulation loops spills every register-resident accumulator):
/// full 8-wide chunks are constant-size array copies, the ragged chunk
/// is constant-trip conditional scalar loads.
#[inline(always)]
fn load_padded<const NR: usize>(src: &[f64]) -> [f64; NR] {
    let n = src.len();
    debug_assert!(n <= NR);
    let mut out = [0.0f64; NR];
    let mut j = 0;
    while j + 8 <= NR {
        if j + 8 <= n {
            let chunk: &[f64; 8] = src[j..j + 8].try_into().expect("width 8");
            out[j..j + 8].copy_from_slice(chunk);
            j += 8;
        } else {
            break;
        }
    }
    while j < NR {
        out[j] = if j < n { src[j] } else { 0.0 };
        j += 1;
    }
    out
}

/// Small-output `Fast` kernel for `C += Aᵀ · B` (`m ≤ MR ≤ 16`,
/// `n ≤ NR ≤ 16`): the entire `m × n` output lives in a flat register
/// file (`acc`, constant-indexed after the `MR`/`NR` loops unroll), and
/// the `l` sample rows stream through it with one broadcast-FMA per
/// `(p, j)` cell — no strided column gathers, no per-block output
/// traffic. This is the batched weight-gradient of a small layer (e.g. a
/// conv's `filters × patch` kernel). Each element is one in-order
/// `mul_add` chain over `l`, within [`fast_epsilon`].
#[inline(always)]
fn gemm_tn_small_fast<const MR: usize, const NR: usize>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    l: usize,
    m: usize,
    n: usize,
) {
    debug_assert!(m <= MR && n <= NR);
    let mut acc = [[0.0f64; NR]; MR];
    for i in 0..l {
        let ar = &a[i * m..(i + 1) * m];
        let brow = &b[i * n..(i + 1) * n];
        let br = load_padded::<NR>(brow);
        for (p, accp) in acc.iter_mut().enumerate() {
            let av = if p < m { ar[p] } else { 0.0 };
            for (av_j, &bv) in accp.iter_mut().zip(&br) {
                *av_j = av.mul_add(bv, *av_j);
            }
        }
    }
    for (p, accp) in acc.iter().enumerate().take(m) {
        for (cv, &av) in c[p * n..(p + 1) * n].iter_mut().zip(accp) {
            *cv += av;
        }
    }
}

/// Monomorphized dispatch for [`gemm_tn_small_fast`] on the padded
/// register widths of `m` and `n`.
#[inline(always)]
fn gemm_tn_small_dispatch(a: &[f64], b: &[f64], c: &mut [f64], l: usize, m: usize, n: usize) {
    match (small_reg_width(m), small_reg_width(n)) {
        (4, 4) => gemm_tn_small_fast::<4, 4>(a, b, c, l, m, n),
        (4, 8) => gemm_tn_small_fast::<4, 8>(a, b, c, l, m, n),
        (4, _) => gemm_tn_small_fast::<4, 16>(a, b, c, l, m, n),
        (8, 4) => gemm_tn_small_fast::<8, 4>(a, b, c, l, m, n),
        (8, 8) => gemm_tn_small_fast::<8, 8>(a, b, c, l, m, n),
        (8, _) => gemm_tn_small_fast::<8, 16>(a, b, c, l, m, n),
        (_, 4) => gemm_tn_small_fast::<16, 4>(a, b, c, l, m, n),
        (_, 8) => gemm_tn_small_fast::<16, 8>(a, b, c, l, m, n),
        _ => gemm_tn_small_fast::<16, 16>(a, b, c, l, m, n),
    }
}

/// The `Fast` counterpart of [`accumulate_rows`]: the 8-term register
/// block accumulates through two interleaved `mul_add` chains (even and
/// odd terms), combined pairwise — breaking the serial dependency chain
/// and fusing each multiply–add into one rounding. Only ever compiled
/// inside `fma`-enabled instantiations, where `mul_add` lowers to a
/// single `vfmadd`.
#[inline(always)]
fn accumulate_rows_fast(
    coeffs: &[f64],
    rows: &[f64],
    stride: usize,
    j0: usize,
    j1: usize,
    c_row: &mut [f64],
) {
    debug_assert_eq!(c_row.len(), j1 - j0);
    let k = coeffs.len();
    let row = |kk: usize| &rows[kk * stride + j0..kk * stride + j1];
    let mut kk = 0;
    while kk + 8 <= k {
        let a: [f64; 8] = coeffs[kk..kk + 8].try_into().expect("length 8");
        let (b0, b1, b2, b3) = (row(kk), row(kk + 1), row(kk + 2), row(kk + 3));
        let (b4, b5, b6, b7) = (row(kk + 4), row(kk + 5), row(kk + 6), row(kk + 7));
        for (j, cv) in c_row.iter_mut().enumerate() {
            let s0 = a[0].mul_add(
                b0[j],
                a[2].mul_add(b2[j], a[4].mul_add(b4[j], a[6] * b6[j])),
            );
            let s1 = a[1].mul_add(
                b1[j],
                a[3].mul_add(b3[j], a[5].mul_add(b5[j], a[7] * b7[j])),
            );
            *cv += s0 + s1;
        }
        kk += 8;
    }
    while kk < k {
        let av = coeffs[kk];
        let bv = row(kk);
        for (j, cv) in c_row.iter_mut().enumerate() {
            *cv = av.mul_add(bv[j], *cv);
        }
        kk += 1;
    }
}

#[inline(always)]
fn gemm_nn_fast_impl(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    c.iter_mut().for_each(|v| *v = 0.0);
    let jb = panel_width(k);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + jb).min(n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n + j0..i * n + j1];
            accumulate_rows_fast(a_row, b, n, j0, j1, c_row);
        }
        j0 = j1;
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_nt_fast_impl(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Scratch,
) {
    if n <= 16 {
        let nr = small_reg_width(n);
        pack_bt_small(b, k, n, nr, scratch);
        let bt = &scratch.packed[..k * nr];
        match nr {
            4 => gemm_small_n_fast::<4>(a, bt, c, m, k, n),
            8 => gemm_small_n_fast::<8>(a, bt, c, m, k, n),
            _ => gemm_small_n_fast::<16>(a, bt, c, m, k, n),
        }
        return;
    }
    c.iter_mut().for_each(|v| *v = 0.0);
    let jb = panel_width(k).min(n.max(1));
    if scratch.packed.len() < jb * k {
        scratch.packed.resize(jb * k, 0.0);
    }
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + jb).min(n);
        let w = j1 - j0;
        for jj in 0..w {
            for (kk, &v) in b[(j0 + jj) * k..(j0 + jj + 1) * k].iter().enumerate() {
                scratch.packed[kk * w + jj] = v;
            }
        }
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n + j0..i * n + j1];
            accumulate_rows_fast(a_row, &scratch.packed[..k * w], w, 0, w, c_row);
        }
        j0 = j1;
    }
}

#[inline(always)]
fn gemm_tn_fast_impl(a: &[f64], b: &[f64], c: &mut [f64], l: usize, m: usize, n: usize) {
    if m <= 16 && n <= 16 {
        gemm_tn_small_dispatch(a, b, c, l, m, n);
        return;
    }
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + TN_COL_PANEL).min(n);
        let mut i0 = 0;
        while i0 < l {
            let i1 = (i0 + TN_ROW_PANEL).min(l);
            for p in 0..m {
                let c_row = &mut c[p * n + j0..p * n + j1];
                let brow = |i: usize| &b[i * n + j0..i * n + j1];
                let mut i = i0;
                while i + 8 <= i1 {
                    let mut ai = [0.0f64; 8];
                    for (u, av) in ai.iter_mut().enumerate() {
                        *av = a[(i + u) * m + p];
                    }
                    let (b0, b1, b2, b3) = (brow(i), brow(i + 1), brow(i + 2), brow(i + 3));
                    let (b4, b5, b6, b7) = (brow(i + 4), brow(i + 5), brow(i + 6), brow(i + 7));
                    for (j, cv) in c_row.iter_mut().enumerate() {
                        let s0 = ai[0].mul_add(
                            b0[j],
                            ai[2].mul_add(b2[j], ai[4].mul_add(b4[j], ai[6] * b6[j])),
                        );
                        let s1 = ai[1].mul_add(
                            b1[j],
                            ai[3].mul_add(b3[j], ai[5].mul_add(b5[j], ai[7] * b7[j])),
                        );
                        *cv += s0 + s1;
                    }
                    i += 8;
                }
                while i < i1 {
                    let av = a[i * m + p];
                    let bv = brow(i);
                    for (j, cv) in c_row.iter_mut().enumerate() {
                        *cv = av.mul_add(bv[j], *cv);
                    }
                    i += 1;
                }
            }
            i0 = i1;
        }
        j0 = j1;
    }
}

/// AVX2+FMA instantiation of [`gemm_nn_fast_impl`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_nn_fast_avx2(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_nn_fast_impl(a, b, c, m, k, n);
}

/// AVX-512+FMA instantiation of [`gemm_nn_fast_impl`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
unsafe fn gemm_nn_fast_avx512(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_nn_fast_impl(a, b, c, m, k, n);
}

/// AVX2+FMA instantiation of [`gemm_nt_fast_impl`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_nt_fast_avx2(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Scratch,
) {
    gemm_nt_fast_impl(a, b, c, m, k, n, scratch);
}

/// AVX-512+FMA instantiation of [`gemm_nt_fast_impl`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_nt_fast_avx512(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Scratch,
) {
    gemm_nt_fast_impl(a, b, c, m, k, n, scratch);
}

/// AVX2+FMA instantiation of [`gemm_tn_fast_impl`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_tn_fast_avx2(a: &[f64], b: &[f64], c: &mut [f64], l: usize, m: usize, n: usize) {
    gemm_tn_fast_impl(a, b, c, l, m, n);
}

/// AVX-512+FMA instantiation of [`gemm_tn_fast_impl`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
unsafe fn gemm_tn_fast_avx512(a: &[f64], b: &[f64], c: &mut [f64], l: usize, m: usize, n: usize) {
    gemm_tn_fast_impl(a, b, c, l, m, n);
}

/// Unblocked reference kernels: the semantic spec the blocked family is
/// tested against (bit-for-bit, see `tests/properties.rs`). Retained as
/// plain per-element loops on purpose — slow, obviously correct.
pub mod reference {
    use crate::vector;

    /// `C = A · B`, per element one in-order dot over `k`.
    pub fn gemm_nn(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
    }

    /// `C = A · Bᵀ`, per element one in-order dot over `k`.
    pub fn gemm_nt(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                c[i * n + j] = vector::dot(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
            }
        }
    }

    /// `C += Aᵀ · B`, per element `i` ascending.
    pub fn gemm_tn_acc(a: &[f64], b: &[f64], c: &mut [f64], l: usize, m: usize, n: usize) {
        for i in 0..l {
            for p in 0..m {
                for q in 0..n {
                    c[p * n + q] += a[i * m + p] * b[i * n + q];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (xorshift-ish; no rand dep here).
    fn fill(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn nt_matches_reference_bits_on_ragged_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 33, 9),
            (5, 600, 13),
            (64, 7, 530),
        ] {
            let a = fill(m as u64 * 31 + k as u64, m * k);
            let b = fill(n as u64 * 17 + 3, n * k);
            let mut fast = vec![0.0; m * n];
            let mut slow = vec![1.0; m * n];
            let mut scratch = Scratch::new();
            gemm_nt_into(&a, &b, &mut fast, m, k, n, &mut scratch);
            reference::gemm_nt(&a, &b, &mut slow, m, k, n);
            for (x, y) in fast.iter().zip(&slow) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn nn_matches_reference_bits_on_ragged_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (4, 6, 5), (9, 520, 11), (30, 3, 700)] {
            let a = fill(m as u64 + 7, m * k);
            let b = fill(k as u64 + 11, k * n);
            let mut fast = vec![0.0; m * n];
            let mut slow = vec![2.0; m * n];
            gemm_nn_into(&a, &b, &mut fast, m, k, n);
            reference::gemm_nn(&a, &b, &mut slow, m, k, n);
            for (x, y) in fast.iter().zip(&slow) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn tn_acc_matches_reference_bits_and_accumulates() {
        for &(l, m, n) in &[(1, 1, 1), (5, 3, 4), (300, 6, 9), (129, 2, 2)] {
            let a = fill(l as u64 * 3, l * m);
            let b = fill(l as u64 * 5 + 1, l * n);
            let init = fill(9, m * n);
            let mut fast = init.clone();
            let mut slow = init;
            gemm_tn_acc(&a, &b, &mut fast, l, m, n);
            reference::gemm_tn_acc(&a, &b, &mut slow, l, m, n);
            for (x, y) in fast.iter().zip(&slow) {
                assert_eq!(x.to_bits(), y.to_bits(), "({l},{m},{n})");
            }
        }
    }

    #[test]
    fn bias_and_col_sums_match_hand_loops() {
        let a = fill(1, 4 * 3);
        let bias = fill(2, 3);
        let mut c = a.clone();
        add_bias_rows(&mut c, 3, &bias);
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(c[i * 3 + j].to_bits(), (a[i * 3 + j] + bias[j]).to_bits());
            }
        }
        let mut sums = vec![0.5; 3];
        let mut expect = sums.clone();
        col_sums_acc(&a, 3, &mut sums);
        for i in 0..4 {
            for j in 0..3 {
                expect[j] += a[i * 3 + j];
            }
        }
        for (x, y) in sums.iter().zip(&expect) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn gram_matches_unblocked_assembly() {
        let (m, r) = (23, 4);
        let a = fill(5, m * r);
        let lambda = 0.37;
        let mut fast = vec![0.0; r * r];
        gram_into(&a, m, r, lambda, &mut fast);
        // The pre-refactor assembly: i outer, per-element i ascending,
        // lambda added after.
        let mut slow = vec![0.0; r * r];
        for i in 0..m {
            let row = &a[i * r..(i + 1) * r];
            for p in 0..r {
                for q in 0..r {
                    slow[p * r + q] += row[p] * row[q];
                }
            }
        }
        for p in 0..r {
            slow[p * r + p] += lambda;
        }
        for (x, y) in fast.iter().zip(&slow) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn scratch_is_reused_across_shapes() {
        let mut scratch = Scratch::new();
        let a = fill(1, 6 * 520);
        let b = fill(2, 9 * 520);
        let mut c = vec![0.0; 6 * 9];
        gemm_nt_into(&a, &b, &mut c, 6, 520, 9, &mut scratch);
        let cap = scratch.packed.capacity();
        // A smaller problem must not grow the buffer.
        let a2 = fill(3, 2 * 8);
        let b2 = fill(4, 3 * 8);
        let mut c2 = vec![0.0; 2 * 3];
        gemm_nt_into(&a2, &b2, &mut c2, 2, 8, 3, &mut scratch);
        assert_eq!(scratch.packed.capacity(), cap);
    }

    /// Per-element ε bound for one output: `fast_epsilon(k, Σ|aᵢ||bᵢ|)`.
    fn elem_bound(ar: &[f64], bc: impl Iterator<Item = f64>) -> f64 {
        let mag: f64 = ar.iter().zip(bc).map(|(x, y)| (x * y).abs()).sum();
        fast_epsilon(ar.len(), mag)
    }

    #[test]
    fn tiered_bit_exact_is_the_reference_path_bitwise() {
        let (m, k, n) = (13, 37, 11);
        let a = fill(3, m * k);
        let b = fill(4, k * n);
        let bt = fill(4, n * k);
        let mut scratch = Scratch::new();

        let mut exact = vec![0.0; m * n];
        let mut tiered = vec![1.0; m * n];
        gemm_nn_into(&a, &b, &mut exact, m, k, n);
        gemm_nn_tiered(&a, &b, &mut tiered, m, k, n, DeterminismTier::BitExact);
        assert!(exact
            .iter()
            .zip(&tiered)
            .all(|(x, y)| x.to_bits() == y.to_bits()));

        let mut exact_nt = vec![0.0; m * n];
        let mut tiered_nt = vec![1.0; m * n];
        gemm_nt_into(&a, &bt, &mut exact_nt, m, k, n, &mut scratch);
        gemm_nt_tiered(
            &a,
            &bt,
            &mut tiered_nt,
            m,
            k,
            n,
            &mut scratch,
            DeterminismTier::BitExact,
        );
        assert!(exact_nt
            .iter()
            .zip(&tiered_nt)
            .all(|(x, y)| x.to_bits() == y.to_bits()));

        let at = fill(5, k * m);
        let mut exact_tn = fill(6, m * n);
        let mut tiered_tn = exact_tn.clone();
        gemm_tn_acc(&at, &b, &mut exact_tn, k, m, n);
        gemm_tn_acc_tiered(&at, &b, &mut tiered_tn, k, m, n, DeterminismTier::BitExact);
        assert!(exact_tn
            .iter()
            .zip(&tiered_tn)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn fast_nn_within_epsilon_of_reference_on_ragged_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 33, 9),
            (5, 600, 13),
            (64, 7, 530),
        ] {
            let a = fill(m as u64 * 13 + k as u64, m * k);
            let b = fill(n as u64 * 7 + 5, k * n);
            let mut fast = vec![0.0; m * n];
            let mut slow = vec![2.0; m * n];
            gemm_nn_tiered(&a, &b, &mut fast, m, k, n, DeterminismTier::Fast);
            reference::gemm_nn(&a, &b, &mut slow, m, k, n);
            for i in 0..m {
                for j in 0..n {
                    let eps = elem_bound(&a[i * k..(i + 1) * k], (0..k).map(|kk| b[kk * n + j]));
                    let d = (fast[i * n + j] - slow[i * n + j]).abs();
                    assert!(d <= eps, "({m},{k},{n}) at ({i},{j}): |Δ|={d} > ε={eps}");
                }
            }
        }
    }

    #[test]
    fn fast_nt_within_epsilon_of_reference_on_ragged_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 33, 9),
            (5, 600, 13),
            (64, 7, 530),
        ] {
            let a = fill(m as u64 * 29 + k as u64, m * k);
            let b = fill(n as u64 * 23 + 1, n * k);
            let mut fast = vec![0.0; m * n];
            let mut slow = vec![2.0; m * n];
            let mut scratch = Scratch::new();
            gemm_nt_tiered(
                &a,
                &b,
                &mut fast,
                m,
                k,
                n,
                &mut scratch,
                DeterminismTier::Fast,
            );
            reference::gemm_nt(&a, &b, &mut slow, m, k, n);
            for i in 0..m {
                for j in 0..n {
                    let eps = elem_bound(
                        &a[i * k..(i + 1) * k],
                        b[j * k..(j + 1) * k].iter().copied(),
                    );
                    let d = (fast[i * n + j] - slow[i * n + j]).abs();
                    assert!(d <= eps, "({m},{k},{n}) at ({i},{j}): |Δ|={d} > ε={eps}");
                }
            }
        }
    }

    #[test]
    fn fast_tn_acc_within_epsilon_and_accumulates() {
        for &(l, m, n) in &[
            (1, 1, 1),
            (5, 3, 4),
            (300, 6, 9),
            (129, 2, 2),
            (260, 9, 300),
        ] {
            let a = fill(l as u64 * 3 + 7, l * m);
            let b = fill(l as u64 * 5 + 2, l * n);
            let init = fill(11, m * n);
            let mut fast = init.clone();
            let mut slow = init.clone();
            gemm_tn_acc_tiered(&a, &b, &mut fast, l, m, n, DeterminismTier::Fast);
            reference::gemm_tn_acc(&a, &b, &mut slow, l, m, n);
            for p in 0..m {
                for q in 0..n {
                    let col_a: Vec<f64> = (0..l).map(|i| a[i * m + p]).collect();
                    let eps = elem_bound(&col_a, (0..l).map(|i| b[i * n + q]))
                        + fast_epsilon(1, init[p * n + q].abs());
                    let d = (fast[p * n + q] - slow[p * n + q]).abs();
                    assert!(d <= eps, "({l},{m},{n}) at ({p},{q}): |Δ|={d} > ε={eps}");
                }
            }
        }
    }

    #[test]
    fn fast_tier_is_deterministic_run_to_run() {
        let (m, k, n) = (19, 70, 23);
        let a = fill(77, m * k);
        let b = fill(78, k * n);
        let mut first = vec![0.0; m * n];
        let mut second = vec![9.0; m * n];
        gemm_nn_tiered(&a, &b, &mut first, m, k, n, DeterminismTier::Fast);
        gemm_nn_tiered(&a, &b, &mut second, m, k, n, DeterminismTier::Fast);
        assert!(first
            .iter()
            .zip(&second)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn fast_epsilon_grows_with_depth_and_magnitude() {
        assert!(fast_epsilon(10, 1.0) < fast_epsilon(100, 1.0));
        assert!(fast_epsilon(10, 1.0) < fast_epsilon(10, 5.0));
        assert_eq!(fast_epsilon(0, 0.0), 0.0);
    }
}
