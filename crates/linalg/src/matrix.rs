//! Row-major dense matrix with the kernels the pipeline needs.
//!
//! The utility matrix of the paper is tall-and-wide (`T × 2^N` or `T × MN`)
//! but always dense once materialized, and the factor matrices `W`, `H` of
//! the completion problem are small (`rank ≤ ~20` columns), so a simple
//! contiguous row-major layout serves every call site well.

use crate::{LinalgError, Result};

/// Dense row-major `f64` matrix. The default value is the empty `0 × 0`
/// matrix (what workspace buffers start as before their first
/// [`resize`](Matrix::resize)).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from nested row slices (mostly for tests).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(LinalgError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (r, c),
                    rhs: (1, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(i, j)` at each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Entry accessor. Panics on out-of-bounds (debug-friendly indexing is
    /// the hot path; shape errors are programmer errors here).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Immutable row slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        let c = self.cols;
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Copies column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Matrix-matrix product `self * rhs`, evaluated by the cache-blocked
    /// [`gemm::gemm_nn_into`](crate::gemm::gemm_nn_into) kernel. Each
    /// entry is one in-order sum over the shared dimension, bit-identical
    /// to the naive triple loop (see [`crate::gemm`]'s contract).
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::gemm::gemm_nn_into(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
        Ok(out)
    }

    /// Matrix-transpose product `self * rhs^T`, avoiding materializing the
    /// transpose. Used for factor products `W Hᵀ`. Routed through the
    /// blocked [`gemm::gemm_nt_into`](crate::gemm::gemm_nt_into).
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_transpose",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        let mut scratch = crate::gemm::Scratch::new();
        crate::gemm::gemm_nt_into(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.rows,
            &mut scratch,
        );
        Ok(out)
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            out.push(crate::vector::dot(self.row(i), x));
        }
        Ok(out)
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.rows != x.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_transpose",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        Ok(out)
    }

    /// Entry-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Entry-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scales every entry in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (`‖·‖_max` of Definition 3).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Maximum absolute column sum (`‖·‖₁` of Definition 5).
    pub fn max_abs_col_sum(&self) -> f64 {
        let mut sums = vec![0.0_f64; self.cols];
        for i in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(i)) {
                *s += v.abs();
            }
        }
        sums.into_iter().fold(0.0_f64, f64::max)
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Reshapes in place to `rows × cols`, reusing the allocation (the
    /// backing vector only grows, never shrinks its capacity). Every
    /// entry is reset to zero — this is how the minibatch workspaces
    /// recycle their per-chunk buffers without allocating.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// [`resize`](Matrix::resize) for buffers the caller fully
    /// overwrites before reading: existing entries are kept (stale) and
    /// only a grown tail is zeroed, skipping the clear-and-fill pass.
    /// The minibatch hot loops use this for activation/delta buffers
    /// that every chunk rewrites end to end.
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Extracts a sub-matrix of the given row range (end exclusive).
    pub fn row_block(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.rows {
            return Err(LinalgError::InvalidDimension {
                what: "row_block range out of bounds",
            });
        }
        Ok(Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_transpose_agrees_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let b = Matrix::from_fn(5, 4, |i, j| (i + j) as f64 * 0.5);
        let fast = a.matmul_transpose(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let y = a.matvec(&[1.0, -1.0]).unwrap();
        assert_eq!(y, vec![-1.0, -1.0]);
    }

    #[test]
    fn matvec_transpose_matches_transpose_then_matvec() {
        let a = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let x = [1.0, 2.0, 3.0];
        let fast = a.matvec_transpose(&x).unwrap();
        let slow = a.transpose().matvec(&x).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::filled(2, 2, 1.5);
        let c = a.add(&b).unwrap().sub(&b).unwrap();
        for (x, y) in c.as_slice().iter().zip(a.as_slice()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn norms_match_hand_computation() {
        let m = Matrix::from_rows(&[&[3.0, -4.0], &[0.0, 0.0]]).unwrap();
        assert!(approx(m.frobenius_norm(), 5.0));
        assert!(approx(m.max_abs(), 4.0));
        // column sums of |.|: [3, 4]
        assert!(approx(m.max_abs_col_sum(), 4.0));
    }

    #[test]
    fn row_block_extracts_middle_rows() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f64);
        let b = m.row_block(1, 3).unwrap();
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b.get(0, 0), 1.0);
        assert_eq!(b.get(1, 0), 2.0);
    }

    #[test]
    fn row_block_rejects_out_of_bounds() {
        let m = Matrix::zeros(2, 2);
        assert!(m.row_block(1, 3).is_err());
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.is_finite());
        m.set(0, 1, f64::NAN);
        assert!(!m.is_finite());
    }

    #[test]
    fn col_extracts_column() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn scale_in_place_scales_every_entry() {
        let mut m = Matrix::filled(2, 3, 2.0);
        m.scale_in_place(0.5);
        assert!(m.as_slice().iter().all(|&v| v == 1.0));
    }
}
