//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the API surface the workspace uses —
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), [`SeedableRng`],
//! [`Rng`] (`random`, `random_range`, `random_bool`), slice [`shuffle`]
//! (Fisher–Yates) and [`seq::index::sample`] (uniform sampling without
//! replacement). Streams are fully deterministic given a seed, which is
//! all the reproduction relies on; the exact values differ from upstream
//! `rand`, and that is fine because every experiment seeds its own stream.
//!
//! [`shuffle`]: seq::SliceRandom::shuffle

use std::ops::Range;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from an [`RngCore`] (the role of upstream
/// `StandardUniform`).
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for u8 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty random_range");
                let span = (high - low) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2⁻⁶⁴·span
                // and irrelevant for the simulation workloads here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low + hi as Self
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of `T` (`f64` ⇒ `[0, 1)`).
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Uniform draw from `[range.start, range.end)`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Not the same stream as upstream `rand::rngs::StdRng` (ChaCha12) —
    /// only determinism-per-seed is contractual here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::Rng;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        //! Index sampling without replacement.

        use super::super::Rng;

        /// Sampled indices in draw order.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a `Vec`.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Iterates the indices by value (mirrors upstream).
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// `true` when nothing was sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// via a partial Fisher–Yates pass.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} of {length} without replacement"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + rng.random_range(0..length - i);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8).map(|_| rng.random::<f64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn random_range_stays_in_bounds_and_hits_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.random_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_without_replacement_is_distinct_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..5000 {
            let picks = sample(&mut rng, 10, 3).into_vec();
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "indices must be distinct");
            for i in picks {
                counts[i] += 1;
            }
        }
        let expected = 5000.0 * 3.0 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.1, "index {i} drawn {c} times, expected ~{expected}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is essentially never identity"
        );
    }

    #[test]
    fn index_vec_iter_yields_values() {
        let mut rng = StdRng::seed_from_u64(13);
        let picks = sample(&mut rng, 6, 2);
        assert_eq!(picks.len(), 2);
        assert!(picks.iter().all(|i| i < 6));
    }
}
