//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's ergonomics: `lock()`
//! / `read()` / `write()` return guards directly (no `Result`), and a
//! poisoned lock is recovered instead of propagated — matching
//! parking_lot's "no poisoning" semantics closely enough for this
//! workspace.

use std::sync::{self, PoisonError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader–writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 4000);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock() must recover from poisoning");
    }
}
