//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros — with a simple
//! calibrated wall-clock loop instead of criterion's statistical engine:
//! each benchmark is warmed up, the iteration count is scaled to a fixed
//! measurement budget, and mean/min times are printed. Good enough to
//! compare kernels and catch order-of-magnitude regressions; not a
//! substitute for criterion's confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-run measurement budget. Deliberately small so `cargo bench` over
/// the whole workspace stays in CI-friendly territory.
const WARMUP: Duration = Duration::from_millis(120);
const MEASURE: Duration = Duration::from_millis(500);

/// Identifies a parameterized benchmark within a group.
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// An id carrying just a parameter, e.g. the problem size.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId {
            param: param.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Display, P: Display>(function: S, param: P) -> Self {
        BenchmarkId {
            param: format!("{function}/{param}"),
        }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// Mean seconds per iteration of the last `iter` call.
    mean: f64,
    /// Fastest single iteration.
    min: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `f` repeatedly: warm-up, then as many iterations as fit the
    /// measurement budget (at least 10).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up while estimating per-iteration cost.
        let mut probe_iters = 0u64;
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(f());
            probe_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / probe_iters.max(1) as f64;
        let target = ((MEASURE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(10, 1_000_000);

        let mut min = f64::INFINITY;
        let start = Instant::now();
        for _ in 0..target {
            let t0 = Instant::now();
            std::hint::black_box(f());
            min = min.min(t0.elapsed().as_secs_f64());
        }
        self.mean = start.elapsed().as_secs_f64() / target as f64;
        self.min = min;
        self.iterations = target;
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        mean: 0.0,
        min: 0.0,
        iterations: 0,
    };
    f(&mut b);
    println!(
        "bench {name:<48} mean {:>12}  min {:>12}  ({} iters)",
        format_time(b.mean),
        format_time(b.min),
        b.iterations
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// The top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark under the group's prefix.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), f);
        self
    }

    /// Runs a parameterized benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.param), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Re-export matching criterion's helper; prefer `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| {
            b.iter(|| (0..n).sum::<i32>())
        });
        group.finish();
    }
}
