//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`], range and
//! [`collection::vec`] strategies, and [`strategy::Strategy::prop_map`].
//!
//! Differences from upstream, by design: cases are drawn from a
//! deterministic per-test stream (seeded by the test name) and failures
//! are *not* shrunk — the failing inputs are printed as-is. That trades
//! minimal counterexamples for zero dependencies, which is what the
//! offline build environment requires.

pub mod test_runner {
    //! Case execution: config, RNG, and failure signalling.

    /// Run configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw fresh ones.
        Reject,
        /// `prop_assert!`-style failure with a message.
        Fail(String),
    }

    /// Deterministic per-test random stream (xoshiro256++ seeded from a
    /// hash of the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the stream from the test's name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = h;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Executes one case body; exists to pin the closure's return type.
    pub fn run_case<F>(f: F) -> Result<(), TestCaseError>
    where
        F: FnOnce() -> Result<(), TestCaseError>,
    {
        f()
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Something that can generate values for test cases.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, i64, i32);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a `lo..hi` range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vec strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The imports property tests start from.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares deterministic property tests, proptest-style.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many rejected cases ({} attempts for {} accepted)",
                        attempts,
                        accepted
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);
                    )*
                    let outcome = $crate::test_runner::run_case(|| {
                        $( let $arg = $arg; )*
                        $body
                        ::core::result::Result::Ok(())
                    });
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", accepted + 1, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let left = $a;
        let right = $b;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Rejects the current case, drawing fresh inputs instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        crate::collection::vec(-1.0..1.0f64, 2).prop_map(|v| (v[0], v[1]))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0..5.0f64, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u64..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            for x in &v {
                prop_assert!(*x < 100, "value {} out of range", x);
            }
        }

        #[test]
        fn prop_map_applies(p in pair()) {
            prop_assert!(p.0 >= -1.0 && p.1 < 1.0);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        let mut c = crate::test_runner::TestRng::for_test("different");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
