/root/repo/target/release/deps/fig6-75282684333f8be7.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-75282684333f8be7: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
