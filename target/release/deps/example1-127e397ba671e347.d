/root/repo/target/release/deps/example1-127e397ba671e347.d: crates/bench/src/bin/example1.rs

/root/repo/target/release/deps/example1-127e397ba671e347: crates/bench/src/bin/example1.rs

crates/bench/src/bin/example1.rs:
