/root/repo/target/release/deps/fedval_models-82c94699b1fb5d1a.d: crates/models/src/lib.rs crates/models/src/cnn.rs crates/models/src/init.rs crates/models/src/linear.rs crates/models/src/mlp.rs crates/models/src/optim.rs crates/models/src/traits.rs

/root/repo/target/release/deps/libfedval_models-82c94699b1fb5d1a.rlib: crates/models/src/lib.rs crates/models/src/cnn.rs crates/models/src/init.rs crates/models/src/linear.rs crates/models/src/mlp.rs crates/models/src/optim.rs crates/models/src/traits.rs

/root/repo/target/release/deps/libfedval_models-82c94699b1fb5d1a.rmeta: crates/models/src/lib.rs crates/models/src/cnn.rs crates/models/src/init.rs crates/models/src/linear.rs crates/models/src/mlp.rs crates/models/src/optim.rs crates/models/src/traits.rs

crates/models/src/lib.rs:
crates/models/src/cnn.rs:
crates/models/src/init.rs:
crates/models/src/linear.rs:
crates/models/src/mlp.rs:
crates/models/src/optim.rs:
crates/models/src/traits.rs:
