/root/repo/target/release/deps/fedval_data-692d08717b3a558e.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/images.rs crates/data/src/noise.rs crates/data/src/partition.rs crates/data/src/randn.rs crates/data/src/synthetic.rs

/root/repo/target/release/deps/libfedval_data-692d08717b3a558e.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/images.rs crates/data/src/noise.rs crates/data/src/partition.rs crates/data/src/randn.rs crates/data/src/synthetic.rs

/root/repo/target/release/deps/libfedval_data-692d08717b3a558e.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/images.rs crates/data/src/noise.rs crates/data/src/partition.rs crates/data/src/randn.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/images.rs:
crates/data/src/noise.rs:
crates/data/src/partition.rs:
crates/data/src/randn.rs:
crates/data/src/synthetic.rs:
