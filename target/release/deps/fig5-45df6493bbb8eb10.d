/root/repo/target/release/deps/fig5-45df6493bbb8eb10.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-45df6493bbb8eb10: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
