/root/repo/target/release/deps/fig2-fe73b6c20bed90c4.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-fe73b6c20bed90c4: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
