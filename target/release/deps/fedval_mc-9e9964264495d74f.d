/root/repo/target/release/deps/fedval_mc-9e9964264495d74f.d: crates/mc/src/lib.rs crates/mc/src/als.rs crates/mc/src/ccd.rs crates/mc/src/factors.rs crates/mc/src/problem.rs crates/mc/src/sgd.rs

/root/repo/target/release/deps/libfedval_mc-9e9964264495d74f.rlib: crates/mc/src/lib.rs crates/mc/src/als.rs crates/mc/src/ccd.rs crates/mc/src/factors.rs crates/mc/src/problem.rs crates/mc/src/sgd.rs

/root/repo/target/release/deps/libfedval_mc-9e9964264495d74f.rmeta: crates/mc/src/lib.rs crates/mc/src/als.rs crates/mc/src/ccd.rs crates/mc/src/factors.rs crates/mc/src/problem.rs crates/mc/src/sgd.rs

crates/mc/src/lib.rs:
crates/mc/src/als.rs:
crates/mc/src/ccd.rs:
crates/mc/src/factors.rs:
crates/mc/src/problem.rs:
crates/mc/src/sgd.rs:
