/root/repo/target/release/deps/oracle_throughput-a1e828a5c4d2fe81.d: crates/bench/src/bin/oracle_throughput.rs

/root/repo/target/release/deps/oracle_throughput-a1e828a5c4d2fe81: crates/bench/src/bin/oracle_throughput.rs

crates/bench/src/bin/oracle_throughput.rs:
