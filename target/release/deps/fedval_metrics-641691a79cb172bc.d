/root/repo/target/release/deps/fedval_metrics-641691a79cb172bc.d: crates/metrics/src/lib.rs crates/metrics/src/ecdf.rs crates/metrics/src/gini.rs crates/metrics/src/jaccard.rs crates/metrics/src/kendall.rs crates/metrics/src/ranking.rs crates/metrics/src/spearman.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libfedval_metrics-641691a79cb172bc.rlib: crates/metrics/src/lib.rs crates/metrics/src/ecdf.rs crates/metrics/src/gini.rs crates/metrics/src/jaccard.rs crates/metrics/src/kendall.rs crates/metrics/src/ranking.rs crates/metrics/src/spearman.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libfedval_metrics-641691a79cb172bc.rmeta: crates/metrics/src/lib.rs crates/metrics/src/ecdf.rs crates/metrics/src/gini.rs crates/metrics/src/jaccard.rs crates/metrics/src/kendall.rs crates/metrics/src/ranking.rs crates/metrics/src/spearman.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/ecdf.rs:
crates/metrics/src/gini.rs:
crates/metrics/src/jaccard.rs:
crates/metrics/src/kendall.rs:
crates/metrics/src/ranking.rs:
crates/metrics/src/spearman.rs:
crates/metrics/src/stats.rs:
