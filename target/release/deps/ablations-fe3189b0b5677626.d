/root/repo/target/release/deps/ablations-fe3189b0b5677626.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-fe3189b0b5677626: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
