/root/repo/target/release/deps/fedval_fl-ed8ef06bd897f7ef.d: crates/fl/src/lib.rs crates/fl/src/config.rs crates/fl/src/subset.rs crates/fl/src/trainer.rs crates/fl/src/utility.rs crates/fl/src/utility_matrix.rs

/root/repo/target/release/deps/libfedval_fl-ed8ef06bd897f7ef.rlib: crates/fl/src/lib.rs crates/fl/src/config.rs crates/fl/src/subset.rs crates/fl/src/trainer.rs crates/fl/src/utility.rs crates/fl/src/utility_matrix.rs

/root/repo/target/release/deps/libfedval_fl-ed8ef06bd897f7ef.rmeta: crates/fl/src/lib.rs crates/fl/src/config.rs crates/fl/src/subset.rs crates/fl/src/trainer.rs crates/fl/src/utility.rs crates/fl/src/utility_matrix.rs

crates/fl/src/lib.rs:
crates/fl/src/config.rs:
crates/fl/src/subset.rs:
crates/fl/src/trainer.rs:
crates/fl/src/utility.rs:
crates/fl/src/utility_matrix.rs:
