/root/repo/target/release/deps/fedval_shapley-8cb9554501e967cb.d: crates/shapley/src/lib.rs crates/shapley/src/coeffs.rs crates/shapley/src/comfedsv.rs crates/shapley/src/exact.rs crates/shapley/src/fairness.rs crates/shapley/src/fedsv.rs crates/shapley/src/group_testing.rs crates/shapley/src/observation.rs crates/shapley/src/pipeline.rs crates/shapley/src/theory.rs crates/shapley/src/tmc.rs

/root/repo/target/release/deps/libfedval_shapley-8cb9554501e967cb.rlib: crates/shapley/src/lib.rs crates/shapley/src/coeffs.rs crates/shapley/src/comfedsv.rs crates/shapley/src/exact.rs crates/shapley/src/fairness.rs crates/shapley/src/fedsv.rs crates/shapley/src/group_testing.rs crates/shapley/src/observation.rs crates/shapley/src/pipeline.rs crates/shapley/src/theory.rs crates/shapley/src/tmc.rs

/root/repo/target/release/deps/libfedval_shapley-8cb9554501e967cb.rmeta: crates/shapley/src/lib.rs crates/shapley/src/coeffs.rs crates/shapley/src/comfedsv.rs crates/shapley/src/exact.rs crates/shapley/src/fairness.rs crates/shapley/src/fedsv.rs crates/shapley/src/group_testing.rs crates/shapley/src/observation.rs crates/shapley/src/pipeline.rs crates/shapley/src/theory.rs crates/shapley/src/tmc.rs

crates/shapley/src/lib.rs:
crates/shapley/src/coeffs.rs:
crates/shapley/src/comfedsv.rs:
crates/shapley/src/exact.rs:
crates/shapley/src/fairness.rs:
crates/shapley/src/fedsv.rs:
crates/shapley/src/group_testing.rs:
crates/shapley/src/observation.rs:
crates/shapley/src/pipeline.rs:
crates/shapley/src/theory.rs:
crates/shapley/src/tmc.rs:
