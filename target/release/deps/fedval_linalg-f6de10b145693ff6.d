/root/repo/target/release/deps/fedval_linalg-f6de10b145693ff6.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/low_rank.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libfedval_linalg-f6de10b145693ff6.rlib: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/low_rank.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libfedval_linalg-f6de10b145693ff6.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/low_rank.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/error.rs:
crates/linalg/src/low_rank.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
