/root/repo/target/release/deps/fig8-35ed2874a69b3e34.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-35ed2874a69b3e34: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
