/root/repo/target/release/deps/comfedsv-3b027b09f659f3b3.d: src/lib.rs src/experiments.rs

/root/repo/target/release/deps/libcomfedsv-3b027b09f659f3b3.rlib: src/lib.rs src/experiments.rs

/root/repo/target/release/deps/libcomfedsv-3b027b09f659f3b3.rmeta: src/lib.rs src/experiments.rs

src/lib.rs:
src/experiments.rs:
