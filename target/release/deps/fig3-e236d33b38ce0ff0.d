/root/repo/target/release/deps/fig3-e236d33b38ce0ff0.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-e236d33b38ce0ff0: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
