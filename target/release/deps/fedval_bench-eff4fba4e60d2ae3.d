/root/repo/target/release/deps/fedval_bench-eff4fba4e60d2ae3.d: crates/bench/src/lib.rs crates/bench/src/fairness_trials.rs crates/bench/src/profile.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libfedval_bench-eff4fba4e60d2ae3.rlib: crates/bench/src/lib.rs crates/bench/src/fairness_trials.rs crates/bench/src/profile.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libfedval_bench-eff4fba4e60d2ae3.rmeta: crates/bench/src/lib.rs crates/bench/src/fairness_trials.rs crates/bench/src/profile.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/fairness_trials.rs:
crates/bench/src/profile.rs:
crates/bench/src/report.rs:
