/root/repo/target/release/deps/fig1-226e46a829c21869.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-226e46a829c21869: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
