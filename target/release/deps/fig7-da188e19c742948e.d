/root/repo/target/release/deps/fig7-da188e19c742948e.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-da188e19c742948e: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
