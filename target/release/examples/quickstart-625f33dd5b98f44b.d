/root/repo/target/release/examples/quickstart-625f33dd5b98f44b.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-625f33dd5b98f44b: examples/quickstart.rs

examples/quickstart.rs:
