/root/repo/target/release/examples/_gate_probe-e55d8bc2942198d1.d: examples/_gate_probe.rs

/root/repo/target/release/examples/_gate_probe-e55d8bc2942198d1: examples/_gate_probe.rs

examples/_gate_probe.rs:
