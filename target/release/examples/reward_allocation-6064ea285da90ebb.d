/root/repo/target/release/examples/reward_allocation-6064ea285da90ebb.d: examples/reward_allocation.rs

/root/repo/target/release/examples/reward_allocation-6064ea285da90ebb: examples/reward_allocation.rs

examples/reward_allocation.rs:
