/root/repo/target/debug/deps/fedval_fl-600ff16f46c78198.d: crates/fl/src/lib.rs crates/fl/src/config.rs crates/fl/src/subset.rs crates/fl/src/trainer.rs crates/fl/src/utility.rs crates/fl/src/utility_matrix.rs

/root/repo/target/debug/deps/fedval_fl-600ff16f46c78198: crates/fl/src/lib.rs crates/fl/src/config.rs crates/fl/src/subset.rs crates/fl/src/trainer.rs crates/fl/src/utility.rs crates/fl/src/utility_matrix.rs

crates/fl/src/lib.rs:
crates/fl/src/config.rs:
crates/fl/src/subset.rs:
crates/fl/src/trainer.rs:
crates/fl/src/utility.rs:
crates/fl/src/utility_matrix.rs:
