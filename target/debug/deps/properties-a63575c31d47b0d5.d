/root/repo/target/debug/deps/properties-a63575c31d47b0d5.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a63575c31d47b0d5: tests/properties.rs

tests/properties.rs:
