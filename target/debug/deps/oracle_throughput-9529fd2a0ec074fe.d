/root/repo/target/debug/deps/oracle_throughput-9529fd2a0ec074fe.d: crates/bench/src/bin/oracle_throughput.rs Cargo.toml

/root/repo/target/debug/deps/liboracle_throughput-9529fd2a0ec074fe.rmeta: crates/bench/src/bin/oracle_throughput.rs Cargo.toml

crates/bench/src/bin/oracle_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
