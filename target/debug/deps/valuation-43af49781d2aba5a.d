/root/repo/target/debug/deps/valuation-43af49781d2aba5a.d: crates/bench/benches/valuation.rs Cargo.toml

/root/repo/target/debug/deps/libvaluation-43af49781d2aba5a.rmeta: crates/bench/benches/valuation.rs Cargo.toml

crates/bench/benches/valuation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
