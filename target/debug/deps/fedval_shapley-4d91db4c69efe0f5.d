/root/repo/target/debug/deps/fedval_shapley-4d91db4c69efe0f5.d: crates/shapley/src/lib.rs crates/shapley/src/coeffs.rs crates/shapley/src/comfedsv.rs crates/shapley/src/exact.rs crates/shapley/src/fairness.rs crates/shapley/src/fedsv.rs crates/shapley/src/group_testing.rs crates/shapley/src/observation.rs crates/shapley/src/pipeline.rs crates/shapley/src/theory.rs crates/shapley/src/tmc.rs

/root/repo/target/debug/deps/fedval_shapley-4d91db4c69efe0f5: crates/shapley/src/lib.rs crates/shapley/src/coeffs.rs crates/shapley/src/comfedsv.rs crates/shapley/src/exact.rs crates/shapley/src/fairness.rs crates/shapley/src/fedsv.rs crates/shapley/src/group_testing.rs crates/shapley/src/observation.rs crates/shapley/src/pipeline.rs crates/shapley/src/theory.rs crates/shapley/src/tmc.rs

crates/shapley/src/lib.rs:
crates/shapley/src/coeffs.rs:
crates/shapley/src/comfedsv.rs:
crates/shapley/src/exact.rs:
crates/shapley/src/fairness.rs:
crates/shapley/src/fedsv.rs:
crates/shapley/src/group_testing.rs:
crates/shapley/src/observation.rs:
crates/shapley/src/pipeline.rs:
crates/shapley/src/theory.rs:
crates/shapley/src/tmc.rs:
