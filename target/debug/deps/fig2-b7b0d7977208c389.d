/root/repo/target/debug/deps/fig2-b7b0d7977208c389.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-b7b0d7977208c389: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
