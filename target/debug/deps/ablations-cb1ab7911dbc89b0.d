/root/repo/target/debug/deps/ablations-cb1ab7911dbc89b0.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-cb1ab7911dbc89b0: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
