/root/repo/target/debug/deps/fig6-d2aeb16ae2ec179d.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-d2aeb16ae2ec179d: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
