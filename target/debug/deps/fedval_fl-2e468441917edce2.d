/root/repo/target/debug/deps/fedval_fl-2e468441917edce2.d: crates/fl/src/lib.rs crates/fl/src/config.rs crates/fl/src/subset.rs crates/fl/src/trainer.rs crates/fl/src/utility.rs crates/fl/src/utility_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libfedval_fl-2e468441917edce2.rmeta: crates/fl/src/lib.rs crates/fl/src/config.rs crates/fl/src/subset.rs crates/fl/src/trainer.rs crates/fl/src/utility.rs crates/fl/src/utility_matrix.rs Cargo.toml

crates/fl/src/lib.rs:
crates/fl/src/config.rs:
crates/fl/src/subset.rs:
crates/fl/src/trainer.rs:
crates/fl/src/utility.rs:
crates/fl/src/utility_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
