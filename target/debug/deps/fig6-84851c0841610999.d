/root/repo/target/debug/deps/fig6-84851c0841610999.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-84851c0841610999: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
