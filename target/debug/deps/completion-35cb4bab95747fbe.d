/root/repo/target/debug/deps/completion-35cb4bab95747fbe.d: crates/bench/benches/completion.rs

/root/repo/target/debug/deps/completion-35cb4bab95747fbe: crates/bench/benches/completion.rs

crates/bench/benches/completion.rs:
