/root/repo/target/debug/deps/fedval_mc-9b02ee1c2a77922c.d: crates/mc/src/lib.rs crates/mc/src/als.rs crates/mc/src/ccd.rs crates/mc/src/factors.rs crates/mc/src/problem.rs crates/mc/src/sgd.rs Cargo.toml

/root/repo/target/debug/deps/libfedval_mc-9b02ee1c2a77922c.rmeta: crates/mc/src/lib.rs crates/mc/src/als.rs crates/mc/src/ccd.rs crates/mc/src/factors.rs crates/mc/src/problem.rs crates/mc/src/sgd.rs Cargo.toml

crates/mc/src/lib.rs:
crates/mc/src/als.rs:
crates/mc/src/ccd.rs:
crates/mc/src/factors.rs:
crates/mc/src/problem.rs:
crates/mc/src/sgd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
