/root/repo/target/debug/deps/comfedsv-ba69f513d0d7a592.d: src/lib.rs src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libcomfedsv-ba69f513d0d7a592.rmeta: src/lib.rs src/experiments.rs Cargo.toml

src/lib.rs:
src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
