/root/repo/target/debug/deps/example1-0b48aa935650a5cf.d: crates/bench/src/bin/example1.rs

/root/repo/target/debug/deps/example1-0b48aa935650a5cf: crates/bench/src/bin/example1.rs

crates/bench/src/bin/example1.rs:
