/root/repo/target/debug/deps/oracle_concurrency-3b3f68a2e77373b6.d: crates/fl/tests/oracle_concurrency.rs

/root/repo/target/debug/deps/oracle_concurrency-3b3f68a2e77373b6: crates/fl/tests/oracle_concurrency.rs

crates/fl/tests/oracle_concurrency.rs:
