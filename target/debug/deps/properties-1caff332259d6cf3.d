/root/repo/target/debug/deps/properties-1caff332259d6cf3.d: crates/linalg/tests/properties.rs

/root/repo/target/debug/deps/properties-1caff332259d6cf3: crates/linalg/tests/properties.rs

crates/linalg/tests/properties.rs:
