/root/repo/target/debug/deps/completion-829d15a05041d88a.d: crates/bench/benches/completion.rs Cargo.toml

/root/repo/target/debug/deps/libcompletion-829d15a05041d88a.rmeta: crates/bench/benches/completion.rs Cargo.toml

crates/bench/benches/completion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
