/root/repo/target/debug/deps/example1-f7053457dcf32d34.d: crates/bench/src/bin/example1.rs Cargo.toml

/root/repo/target/debug/deps/libexample1-f7053457dcf32d34.rmeta: crates/bench/src/bin/example1.rs Cargo.toml

crates/bench/src/bin/example1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
