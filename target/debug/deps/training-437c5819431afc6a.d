/root/repo/target/debug/deps/training-437c5819431afc6a.d: crates/bench/benches/training.rs Cargo.toml

/root/repo/target/debug/deps/libtraining-437c5819431afc6a.rmeta: crates/bench/benches/training.rs Cargo.toml

crates/bench/benches/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
