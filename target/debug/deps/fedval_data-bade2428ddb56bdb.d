/root/repo/target/debug/deps/fedval_data-bade2428ddb56bdb.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/images.rs crates/data/src/noise.rs crates/data/src/partition.rs crates/data/src/randn.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libfedval_data-bade2428ddb56bdb.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/images.rs crates/data/src/noise.rs crates/data/src/partition.rs crates/data/src/randn.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libfedval_data-bade2428ddb56bdb.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/images.rs crates/data/src/noise.rs crates/data/src/partition.rs crates/data/src/randn.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/images.rs:
crates/data/src/noise.rs:
crates/data/src/partition.rs:
crates/data/src/randn.rs:
crates/data/src/synthetic.rs:
