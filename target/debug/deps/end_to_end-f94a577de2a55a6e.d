/root/repo/target/debug/deps/end_to_end-f94a577de2a55a6e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f94a577de2a55a6e: tests/end_to_end.rs

tests/end_to_end.rs:
