/root/repo/target/debug/deps/oracle_throughput-a427e4ced7a187d8.d: crates/bench/src/bin/oracle_throughput.rs

/root/repo/target/debug/deps/oracle_throughput-a427e4ced7a187d8: crates/bench/src/bin/oracle_throughput.rs

crates/bench/src/bin/oracle_throughput.rs:
