/root/repo/target/debug/deps/fig1-458e5653733d3661.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-458e5653733d3661: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
