/root/repo/target/debug/deps/fig3-5cf341c1d8d1cb20.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-5cf341c1d8d1cb20: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
