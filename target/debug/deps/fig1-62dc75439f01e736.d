/root/repo/target/debug/deps/fig1-62dc75439f01e736.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-62dc75439f01e736: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
