/root/repo/target/debug/deps/fedval_data-768c1036192d137e.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/images.rs crates/data/src/noise.rs crates/data/src/partition.rs crates/data/src/randn.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/fedval_data-768c1036192d137e: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/images.rs crates/data/src/noise.rs crates/data/src/partition.rs crates/data/src/randn.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/images.rs:
crates/data/src/noise.rs:
crates/data/src/partition.rs:
crates/data/src/randn.rs:
crates/data/src/synthetic.rs:
