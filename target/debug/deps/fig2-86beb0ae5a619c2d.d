/root/repo/target/debug/deps/fig2-86beb0ae5a619c2d.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-86beb0ae5a619c2d: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
