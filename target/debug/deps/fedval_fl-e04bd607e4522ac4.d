/root/repo/target/debug/deps/fedval_fl-e04bd607e4522ac4.d: crates/fl/src/lib.rs crates/fl/src/config.rs crates/fl/src/subset.rs crates/fl/src/trainer.rs crates/fl/src/utility.rs crates/fl/src/utility_matrix.rs

/root/repo/target/debug/deps/libfedval_fl-e04bd607e4522ac4.rlib: crates/fl/src/lib.rs crates/fl/src/config.rs crates/fl/src/subset.rs crates/fl/src/trainer.rs crates/fl/src/utility.rs crates/fl/src/utility_matrix.rs

/root/repo/target/debug/deps/libfedval_fl-e04bd607e4522ac4.rmeta: crates/fl/src/lib.rs crates/fl/src/config.rs crates/fl/src/subset.rs crates/fl/src/trainer.rs crates/fl/src/utility.rs crates/fl/src/utility_matrix.rs

crates/fl/src/lib.rs:
crates/fl/src/config.rs:
crates/fl/src/subset.rs:
crates/fl/src/trainer.rs:
crates/fl/src/utility.rs:
crates/fl/src/utility_matrix.rs:
