/root/repo/target/debug/deps/fig8-1448c20053b887ec.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-1448c20053b887ec: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
