/root/repo/target/debug/deps/fedval_metrics-4c6e0e3313df0f90.d: crates/metrics/src/lib.rs crates/metrics/src/ecdf.rs crates/metrics/src/gini.rs crates/metrics/src/jaccard.rs crates/metrics/src/kendall.rs crates/metrics/src/ranking.rs crates/metrics/src/spearman.rs crates/metrics/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libfedval_metrics-4c6e0e3313df0f90.rmeta: crates/metrics/src/lib.rs crates/metrics/src/ecdf.rs crates/metrics/src/gini.rs crates/metrics/src/jaccard.rs crates/metrics/src/kendall.rs crates/metrics/src/ranking.rs crates/metrics/src/spearman.rs crates/metrics/src/stats.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/ecdf.rs:
crates/metrics/src/gini.rs:
crates/metrics/src/jaccard.rs:
crates/metrics/src/kendall.rs:
crates/metrics/src/ranking.rs:
crates/metrics/src/spearman.rs:
crates/metrics/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
