/root/repo/target/debug/deps/fedval_linalg-7d6b4232d9e9f480.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/low_rank.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/fedval_linalg-7d6b4232d9e9f480: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/low_rank.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/error.rs:
crates/linalg/src/low_rank.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
