/root/repo/target/debug/deps/fig7-cee33349cbd6558e.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-cee33349cbd6558e: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
