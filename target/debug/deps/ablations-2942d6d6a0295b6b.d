/root/repo/target/debug/deps/ablations-2942d6d6a0295b6b.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-2942d6d6a0295b6b.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
