/root/repo/target/debug/deps/oracle_concurrency-73ec40529a869bf7.d: crates/fl/tests/oracle_concurrency.rs Cargo.toml

/root/repo/target/debug/deps/liboracle_concurrency-73ec40529a869bf7.rmeta: crates/fl/tests/oracle_concurrency.rs Cargo.toml

crates/fl/tests/oracle_concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
