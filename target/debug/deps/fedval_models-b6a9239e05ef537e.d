/root/repo/target/debug/deps/fedval_models-b6a9239e05ef537e.d: crates/models/src/lib.rs crates/models/src/cnn.rs crates/models/src/init.rs crates/models/src/linear.rs crates/models/src/mlp.rs crates/models/src/optim.rs crates/models/src/traits.rs Cargo.toml

/root/repo/target/debug/deps/libfedval_models-b6a9239e05ef537e.rmeta: crates/models/src/lib.rs crates/models/src/cnn.rs crates/models/src/init.rs crates/models/src/linear.rs crates/models/src/mlp.rs crates/models/src/optim.rs crates/models/src/traits.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/cnn.rs:
crates/models/src/init.rs:
crates/models/src/linear.rs:
crates/models/src/mlp.rs:
crates/models/src/optim.rs:
crates/models/src/traits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
