/root/repo/target/debug/deps/oracle_throughput-c73f8798b6e76b08.d: crates/bench/src/bin/oracle_throughput.rs Cargo.toml

/root/repo/target/debug/deps/liboracle_throughput-c73f8798b6e76b08.rmeta: crates/bench/src/bin/oracle_throughput.rs Cargo.toml

crates/bench/src/bin/oracle_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
