/root/repo/target/debug/deps/fig5-4d7fb73cf4f760b9.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-4d7fb73cf4f760b9: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
