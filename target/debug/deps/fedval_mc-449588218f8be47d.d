/root/repo/target/debug/deps/fedval_mc-449588218f8be47d.d: crates/mc/src/lib.rs crates/mc/src/als.rs crates/mc/src/ccd.rs crates/mc/src/factors.rs crates/mc/src/problem.rs crates/mc/src/sgd.rs

/root/repo/target/debug/deps/fedval_mc-449588218f8be47d: crates/mc/src/lib.rs crates/mc/src/als.rs crates/mc/src/ccd.rs crates/mc/src/factors.rs crates/mc/src/problem.rs crates/mc/src/sgd.rs

crates/mc/src/lib.rs:
crates/mc/src/als.rs:
crates/mc/src/ccd.rs:
crates/mc/src/factors.rs:
crates/mc/src/problem.rs:
crates/mc/src/sgd.rs:
