/root/repo/target/debug/deps/fig5-4056a69a512ea386.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-4056a69a512ea386: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
