/root/repo/target/debug/deps/fig8-e42a33167d5541cb.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-e42a33167d5541cb: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
