/root/repo/target/debug/deps/fedval_bench-1811bee987b89430.d: crates/bench/src/lib.rs crates/bench/src/fairness_trials.rs crates/bench/src/profile.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libfedval_bench-1811bee987b89430.rlib: crates/bench/src/lib.rs crates/bench/src/fairness_trials.rs crates/bench/src/profile.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libfedval_bench-1811bee987b89430.rmeta: crates/bench/src/lib.rs crates/bench/src/fairness_trials.rs crates/bench/src/profile.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/fairness_trials.rs:
crates/bench/src/profile.rs:
crates/bench/src/report.rs:
