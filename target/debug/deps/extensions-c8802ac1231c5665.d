/root/repo/target/debug/deps/extensions-c8802ac1231c5665.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-c8802ac1231c5665: tests/extensions.rs

tests/extensions.rs:
