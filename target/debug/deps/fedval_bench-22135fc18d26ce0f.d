/root/repo/target/debug/deps/fedval_bench-22135fc18d26ce0f.d: crates/bench/src/lib.rs crates/bench/src/fairness_trials.rs crates/bench/src/profile.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/fedval_bench-22135fc18d26ce0f: crates/bench/src/lib.rs crates/bench/src/fairness_trials.rs crates/bench/src/profile.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/fairness_trials.rs:
crates/bench/src/profile.rs:
crates/bench/src/report.rs:
