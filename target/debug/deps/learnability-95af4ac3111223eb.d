/root/repo/target/debug/deps/learnability-95af4ac3111223eb.d: crates/models/tests/learnability.rs

/root/repo/target/debug/deps/learnability-95af4ac3111223eb: crates/models/tests/learnability.rs

crates/models/tests/learnability.rs:
