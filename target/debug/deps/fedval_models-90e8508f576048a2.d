/root/repo/target/debug/deps/fedval_models-90e8508f576048a2.d: crates/models/src/lib.rs crates/models/src/cnn.rs crates/models/src/init.rs crates/models/src/linear.rs crates/models/src/mlp.rs crates/models/src/optim.rs crates/models/src/traits.rs

/root/repo/target/debug/deps/libfedval_models-90e8508f576048a2.rlib: crates/models/src/lib.rs crates/models/src/cnn.rs crates/models/src/init.rs crates/models/src/linear.rs crates/models/src/mlp.rs crates/models/src/optim.rs crates/models/src/traits.rs

/root/repo/target/debug/deps/libfedval_models-90e8508f576048a2.rmeta: crates/models/src/lib.rs crates/models/src/cnn.rs crates/models/src/init.rs crates/models/src/linear.rs crates/models/src/mlp.rs crates/models/src/optim.rs crates/models/src/traits.rs

crates/models/src/lib.rs:
crates/models/src/cnn.rs:
crates/models/src/init.rs:
crates/models/src/linear.rs:
crates/models/src/mlp.rs:
crates/models/src/optim.rs:
crates/models/src/traits.rs:
