/root/repo/target/debug/deps/fedval_linalg-109a138a6af3997f.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/low_rank.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libfedval_linalg-109a138a6af3997f.rlib: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/low_rank.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libfedval_linalg-109a138a6af3997f.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/low_rank.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/error.rs:
crates/linalg/src/low_rank.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
