/root/repo/target/debug/deps/comfedsv-aa2e1be423531314.d: src/lib.rs src/experiments.rs

/root/repo/target/debug/deps/libcomfedsv-aa2e1be423531314.rlib: src/lib.rs src/experiments.rs

/root/repo/target/debug/deps/libcomfedsv-aa2e1be423531314.rmeta: src/lib.rs src/experiments.rs

src/lib.rs:
src/experiments.rs:
