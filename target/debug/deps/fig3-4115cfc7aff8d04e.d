/root/repo/target/debug/deps/fig3-4115cfc7aff8d04e.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-4115cfc7aff8d04e.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
