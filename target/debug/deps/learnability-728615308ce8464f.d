/root/repo/target/debug/deps/learnability-728615308ce8464f.d: crates/models/tests/learnability.rs Cargo.toml

/root/repo/target/debug/deps/liblearnability-728615308ce8464f.rmeta: crates/models/tests/learnability.rs Cargo.toml

crates/models/tests/learnability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
