/root/repo/target/debug/deps/comfedsv-f4b85a3ca571e31f.d: src/lib.rs src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libcomfedsv-f4b85a3ca571e31f.rmeta: src/lib.rs src/experiments.rs Cargo.toml

src/lib.rs:
src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
