/root/repo/target/debug/deps/fedval_bench-01d14a87dca33c65.d: crates/bench/src/lib.rs crates/bench/src/fairness_trials.rs crates/bench/src/profile.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libfedval_bench-01d14a87dca33c65.rmeta: crates/bench/src/lib.rs crates/bench/src/fairness_trials.rs crates/bench/src/profile.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/fairness_trials.rs:
crates/bench/src/profile.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
