/root/repo/target/debug/deps/fedval_metrics-ea0c7355f8ba1f59.d: crates/metrics/src/lib.rs crates/metrics/src/ecdf.rs crates/metrics/src/gini.rs crates/metrics/src/jaccard.rs crates/metrics/src/kendall.rs crates/metrics/src/ranking.rs crates/metrics/src/spearman.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/fedval_metrics-ea0c7355f8ba1f59: crates/metrics/src/lib.rs crates/metrics/src/ecdf.rs crates/metrics/src/gini.rs crates/metrics/src/jaccard.rs crates/metrics/src/kendall.rs crates/metrics/src/ranking.rs crates/metrics/src/spearman.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/ecdf.rs:
crates/metrics/src/gini.rs:
crates/metrics/src/jaccard.rs:
crates/metrics/src/kendall.rs:
crates/metrics/src/ranking.rs:
crates/metrics/src/spearman.rs:
crates/metrics/src/stats.rs:
