/root/repo/target/debug/deps/linalg-b5c42d29dd3dd4c9.d: crates/bench/benches/linalg.rs

/root/repo/target/debug/deps/linalg-b5c42d29dd3dd4c9: crates/bench/benches/linalg.rs

crates/bench/benches/linalg.rs:
