/root/repo/target/debug/deps/linalg-738b9f5a40a35611.d: crates/bench/benches/linalg.rs Cargo.toml

/root/repo/target/debug/deps/liblinalg-738b9f5a40a35611.rmeta: crates/bench/benches/linalg.rs Cargo.toml

crates/bench/benches/linalg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
