/root/repo/target/debug/deps/example1-97243ca27f89695e.d: crates/bench/src/bin/example1.rs

/root/repo/target/debug/deps/example1-97243ca27f89695e: crates/bench/src/bin/example1.rs

crates/bench/src/bin/example1.rs:
