/root/repo/target/debug/deps/extensions-ff1daaecb24558a5.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-ff1daaecb24558a5.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
