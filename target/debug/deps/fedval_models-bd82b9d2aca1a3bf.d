/root/repo/target/debug/deps/fedval_models-bd82b9d2aca1a3bf.d: crates/models/src/lib.rs crates/models/src/cnn.rs crates/models/src/init.rs crates/models/src/linear.rs crates/models/src/mlp.rs crates/models/src/optim.rs crates/models/src/traits.rs Cargo.toml

/root/repo/target/debug/deps/libfedval_models-bd82b9d2aca1a3bf.rmeta: crates/models/src/lib.rs crates/models/src/cnn.rs crates/models/src/init.rs crates/models/src/linear.rs crates/models/src/mlp.rs crates/models/src/optim.rs crates/models/src/traits.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/cnn.rs:
crates/models/src/init.rs:
crates/models/src/linear.rs:
crates/models/src/mlp.rs:
crates/models/src/optim.rs:
crates/models/src/traits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
