/root/repo/target/debug/deps/cross_dataset-302d40a0e3d1caad.d: tests/cross_dataset.rs Cargo.toml

/root/repo/target/debug/deps/libcross_dataset-302d40a0e3d1caad.rmeta: tests/cross_dataset.rs Cargo.toml

tests/cross_dataset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
