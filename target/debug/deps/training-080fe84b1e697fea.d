/root/repo/target/debug/deps/training-080fe84b1e697fea.d: crates/bench/benches/training.rs

/root/repo/target/debug/deps/training-080fe84b1e697fea: crates/bench/benches/training.rs

crates/bench/benches/training.rs:
