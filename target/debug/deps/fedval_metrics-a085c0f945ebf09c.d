/root/repo/target/debug/deps/fedval_metrics-a085c0f945ebf09c.d: crates/metrics/src/lib.rs crates/metrics/src/ecdf.rs crates/metrics/src/gini.rs crates/metrics/src/jaccard.rs crates/metrics/src/kendall.rs crates/metrics/src/ranking.rs crates/metrics/src/spearman.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libfedval_metrics-a085c0f945ebf09c.rlib: crates/metrics/src/lib.rs crates/metrics/src/ecdf.rs crates/metrics/src/gini.rs crates/metrics/src/jaccard.rs crates/metrics/src/kendall.rs crates/metrics/src/ranking.rs crates/metrics/src/spearman.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libfedval_metrics-a085c0f945ebf09c.rmeta: crates/metrics/src/lib.rs crates/metrics/src/ecdf.rs crates/metrics/src/gini.rs crates/metrics/src/jaccard.rs crates/metrics/src/kendall.rs crates/metrics/src/ranking.rs crates/metrics/src/spearman.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/ecdf.rs:
crates/metrics/src/gini.rs:
crates/metrics/src/jaccard.rs:
crates/metrics/src/kendall.rs:
crates/metrics/src/ranking.rs:
crates/metrics/src/spearman.rs:
crates/metrics/src/stats.rs:
