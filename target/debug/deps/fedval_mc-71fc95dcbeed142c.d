/root/repo/target/debug/deps/fedval_mc-71fc95dcbeed142c.d: crates/mc/src/lib.rs crates/mc/src/als.rs crates/mc/src/ccd.rs crates/mc/src/factors.rs crates/mc/src/problem.rs crates/mc/src/sgd.rs

/root/repo/target/debug/deps/libfedval_mc-71fc95dcbeed142c.rlib: crates/mc/src/lib.rs crates/mc/src/als.rs crates/mc/src/ccd.rs crates/mc/src/factors.rs crates/mc/src/problem.rs crates/mc/src/sgd.rs

/root/repo/target/debug/deps/libfedval_mc-71fc95dcbeed142c.rmeta: crates/mc/src/lib.rs crates/mc/src/als.rs crates/mc/src/ccd.rs crates/mc/src/factors.rs crates/mc/src/problem.rs crates/mc/src/sgd.rs

crates/mc/src/lib.rs:
crates/mc/src/als.rs:
crates/mc/src/ccd.rs:
crates/mc/src/factors.rs:
crates/mc/src/problem.rs:
crates/mc/src/sgd.rs:
