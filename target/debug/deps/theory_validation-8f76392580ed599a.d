/root/repo/target/debug/deps/theory_validation-8f76392580ed599a.d: tests/theory_validation.rs Cargo.toml

/root/repo/target/debug/deps/libtheory_validation-8f76392580ed599a.rmeta: tests/theory_validation.rs Cargo.toml

tests/theory_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
