/root/repo/target/debug/deps/fedval_data-284d9188c2894fff.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/images.rs crates/data/src/noise.rs crates/data/src/partition.rs crates/data/src/randn.rs crates/data/src/synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libfedval_data-284d9188c2894fff.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/images.rs crates/data/src/noise.rs crates/data/src/partition.rs crates/data/src/randn.rs crates/data/src/synthetic.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/images.rs:
crates/data/src/noise.rs:
crates/data/src/partition.rs:
crates/data/src/randn.rs:
crates/data/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
