/root/repo/target/debug/deps/fedval_linalg-39fa4a7005a07ca3.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/low_rank.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libfedval_linalg-39fa4a7005a07ca3.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/low_rank.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/error.rs:
crates/linalg/src/low_rank.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
