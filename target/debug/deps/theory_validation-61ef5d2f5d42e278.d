/root/repo/target/debug/deps/theory_validation-61ef5d2f5d42e278.d: tests/theory_validation.rs

/root/repo/target/debug/deps/theory_validation-61ef5d2f5d42e278: tests/theory_validation.rs

tests/theory_validation.rs:
