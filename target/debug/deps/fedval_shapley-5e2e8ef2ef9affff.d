/root/repo/target/debug/deps/fedval_shapley-5e2e8ef2ef9affff.d: crates/shapley/src/lib.rs crates/shapley/src/coeffs.rs crates/shapley/src/comfedsv.rs crates/shapley/src/exact.rs crates/shapley/src/fairness.rs crates/shapley/src/fedsv.rs crates/shapley/src/group_testing.rs crates/shapley/src/observation.rs crates/shapley/src/pipeline.rs crates/shapley/src/theory.rs crates/shapley/src/tmc.rs Cargo.toml

/root/repo/target/debug/deps/libfedval_shapley-5e2e8ef2ef9affff.rmeta: crates/shapley/src/lib.rs crates/shapley/src/coeffs.rs crates/shapley/src/comfedsv.rs crates/shapley/src/exact.rs crates/shapley/src/fairness.rs crates/shapley/src/fedsv.rs crates/shapley/src/group_testing.rs crates/shapley/src/observation.rs crates/shapley/src/pipeline.rs crates/shapley/src/theory.rs crates/shapley/src/tmc.rs Cargo.toml

crates/shapley/src/lib.rs:
crates/shapley/src/coeffs.rs:
crates/shapley/src/comfedsv.rs:
crates/shapley/src/exact.rs:
crates/shapley/src/fairness.rs:
crates/shapley/src/fedsv.rs:
crates/shapley/src/group_testing.rs:
crates/shapley/src/observation.rs:
crates/shapley/src/pipeline.rs:
crates/shapley/src/theory.rs:
crates/shapley/src/tmc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
