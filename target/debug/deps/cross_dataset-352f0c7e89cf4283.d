/root/repo/target/debug/deps/cross_dataset-352f0c7e89cf4283.d: tests/cross_dataset.rs

/root/repo/target/debug/deps/cross_dataset-352f0c7e89cf4283: tests/cross_dataset.rs

tests/cross_dataset.rs:
