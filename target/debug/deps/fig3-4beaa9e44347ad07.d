/root/repo/target/debug/deps/fig3-4beaa9e44347ad07.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-4beaa9e44347ad07: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
