/root/repo/target/debug/deps/example1-a887be799e1994d6.d: crates/bench/src/bin/example1.rs Cargo.toml

/root/repo/target/debug/deps/libexample1-a887be799e1994d6.rmeta: crates/bench/src/bin/example1.rs Cargo.toml

crates/bench/src/bin/example1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
