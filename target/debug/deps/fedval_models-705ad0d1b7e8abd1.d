/root/repo/target/debug/deps/fedval_models-705ad0d1b7e8abd1.d: crates/models/src/lib.rs crates/models/src/cnn.rs crates/models/src/init.rs crates/models/src/linear.rs crates/models/src/mlp.rs crates/models/src/optim.rs crates/models/src/traits.rs

/root/repo/target/debug/deps/fedval_models-705ad0d1b7e8abd1: crates/models/src/lib.rs crates/models/src/cnn.rs crates/models/src/init.rs crates/models/src/linear.rs crates/models/src/mlp.rs crates/models/src/optim.rs crates/models/src/traits.rs

crates/models/src/lib.rs:
crates/models/src/cnn.rs:
crates/models/src/init.rs:
crates/models/src/linear.rs:
crates/models/src/mlp.rs:
crates/models/src/optim.rs:
crates/models/src/traits.rs:
