/root/repo/target/debug/deps/comfedsv-9465c6c433dc5aa2.d: src/lib.rs src/experiments.rs

/root/repo/target/debug/deps/comfedsv-9465c6c433dc5aa2: src/lib.rs src/experiments.rs

src/lib.rs:
src/experiments.rs:
