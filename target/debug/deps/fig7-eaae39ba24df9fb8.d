/root/repo/target/debug/deps/fig7-eaae39ba24df9fb8.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-eaae39ba24df9fb8: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
