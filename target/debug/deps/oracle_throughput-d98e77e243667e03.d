/root/repo/target/debug/deps/oracle_throughput-d98e77e243667e03.d: crates/bench/src/bin/oracle_throughput.rs

/root/repo/target/debug/deps/oracle_throughput-d98e77e243667e03: crates/bench/src/bin/oracle_throughput.rs

crates/bench/src/bin/oracle_throughput.rs:
