/root/repo/target/debug/deps/ablations-b9d04119e5d372ae.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-b9d04119e5d372ae: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
