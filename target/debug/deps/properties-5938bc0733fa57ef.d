/root/repo/target/debug/deps/properties-5938bc0733fa57ef.d: crates/linalg/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-5938bc0733fa57ef.rmeta: crates/linalg/tests/properties.rs Cargo.toml

crates/linalg/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
