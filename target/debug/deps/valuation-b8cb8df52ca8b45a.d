/root/repo/target/debug/deps/valuation-b8cb8df52ca8b45a.d: crates/bench/benches/valuation.rs

/root/repo/target/debug/deps/valuation-b8cb8df52ca8b45a: crates/bench/benches/valuation.rs

crates/bench/benches/valuation.rs:
