/root/repo/target/debug/examples/quickstart-091e49e269c5e0ee.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-091e49e269c5e0ee.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
