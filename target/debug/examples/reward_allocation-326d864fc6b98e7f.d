/root/repo/target/debug/examples/reward_allocation-326d864fc6b98e7f.d: examples/reward_allocation.rs

/root/repo/target/debug/examples/reward_allocation-326d864fc6b98e7f: examples/reward_allocation.rs

examples/reward_allocation.rs:
