/root/repo/target/debug/examples/noisy_client_detection-a1f023603183842d.d: examples/noisy_client_detection.rs Cargo.toml

/root/repo/target/debug/examples/libnoisy_client_detection-a1f023603183842d.rmeta: examples/noisy_client_detection.rs Cargo.toml

examples/noisy_client_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
