/root/repo/target/debug/examples/low_rank_theory-dcbdc8d7ce0641d1.d: examples/low_rank_theory.rs Cargo.toml

/root/repo/target/debug/examples/liblow_rank_theory-dcbdc8d7ce0641d1.rmeta: examples/low_rank_theory.rs Cargo.toml

examples/low_rank_theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
