/root/repo/target/debug/examples/reward_allocation-c46541374b8f2b11.d: examples/reward_allocation.rs Cargo.toml

/root/repo/target/debug/examples/libreward_allocation-c46541374b8f2b11.rmeta: examples/reward_allocation.rs Cargo.toml

examples/reward_allocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
