/root/repo/target/debug/examples/fairness_audit-d1f858a669eb388a.d: examples/fairness_audit.rs

/root/repo/target/debug/examples/fairness_audit-d1f858a669eb388a: examples/fairness_audit.rs

examples/fairness_audit.rs:
