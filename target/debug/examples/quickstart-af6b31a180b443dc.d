/root/repo/target/debug/examples/quickstart-af6b31a180b443dc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-af6b31a180b443dc: examples/quickstart.rs

examples/quickstart.rs:
