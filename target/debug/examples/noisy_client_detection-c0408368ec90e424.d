/root/repo/target/debug/examples/noisy_client_detection-c0408368ec90e424.d: examples/noisy_client_detection.rs

/root/repo/target/debug/examples/noisy_client_detection-c0408368ec90e424: examples/noisy_client_detection.rs

examples/noisy_client_detection.rs:
