/root/repo/target/debug/examples/low_rank_theory-08d15c51540c4492.d: examples/low_rank_theory.rs

/root/repo/target/debug/examples/low_rank_theory-08d15c51540c4492: examples/low_rank_theory.rs

examples/low_rank_theory.rs:
