//! End-to-end integration tests: Algorithm 1 against ground truth, the
//! fairness guarantee of Theorem 1, and the FedSV baseline, across crates.

use comfedsv::metrics::{relative_difference, spearman_rho};
use comfedsv::prelude::*;
use comfedsv::shapley::fairness::{completion_delta, theorem1_tolerance};
use fedval_fl::full_utility_matrix;

fn small_world(seed: u64, duplicate: bool) -> World {
    let mut b = ExperimentBuilder::synthetic(true)
        .num_clients(6)
        .samples_per_client(40)
        .test_samples(80)
        .seed(seed);
    if duplicate {
        b = b.duplicate(0, 5);
    }
    b.build()
}

#[test]
fn pipeline_tracks_ground_truth_ranking() {
    let world = small_world(1, false);
    let trace = world.train(&FlConfig::new(6, 3, 0.2, 1));
    let oracle = world.oracle(&trace);
    let gt = ExactShapley.run(&oracle).unwrap();
    let out = ComFedSv::exact(5).with_lambda(1e-3).run(&oracle).unwrap();
    let rho = spearman_rho(&out.values, &gt).unwrap();
    assert!(rho > 0.6, "rank correlation with ground truth {rho}");
}

#[test]
fn theorem1_fairness_bound_holds_for_duplicated_clients() {
    // Measure δ = ‖U − WHᵀ‖₁ and check |s_0 − s_5| ≤ 4δ/N for the
    // identical clients 0 and 5 (Theorem 1's symmetry guarantee).
    let world = small_world(3, true);
    let trace = world.train(&FlConfig::new(6, 3, 0.2, 3));
    let oracle = world.oracle(&trace);
    let out = ComFedSv::exact(5).with_lambda(1e-3).run(&oracle).unwrap();
    let full = full_utility_matrix(&oracle);
    let delta = completion_delta(&full, &out.factors, &out.problem);
    let tol = theorem1_tolerance(delta, world.num_clients());
    let gap = (out.values[0] - out.values[5]).abs();
    assert!(
        gap <= tol + 1e-9,
        "symmetry gap {gap} exceeds Theorem-1 tolerance {tol} (delta {delta})"
    );
}

#[test]
fn comfedsv_is_fairer_than_fedsv_on_average() {
    // Over several selection seeds, the mean relative difference between
    // duplicated clients must be smaller under ComFedSV than under FedSV —
    // the paper's Fig. 5 in miniature.
    let mut fed_total = 0.0;
    let mut com_total = 0.0;
    let trials = 6;
    for t in 0..trials {
        let seed = 50 + t;
        let world = small_world(seed, true);
        let trace = world.train(&FlConfig::new(6, 2, 0.2, seed));
        let oracle = world.oracle(&trace);
        let fed = FedSv::exact().run(&oracle).unwrap();
        let out = ComFedSv::exact(5)
            .with_lambda(1e-3)
            .with_seed(seed)
            .run(&oracle)
            .unwrap();
        fed_total += relative_difference(fed[0], fed[5]);
        com_total += relative_difference(out.values[0], out.values[5]);
    }
    assert!(
        com_total <= fed_total,
        "ComFedSV mean diff {} vs FedSV {}",
        com_total / trials as f64,
        fed_total / trials as f64
    );
}

#[test]
fn monte_carlo_matches_exact_at_scale_boundary() {
    let world = small_world(9, false);
    let trace = world.train(&FlConfig::new(5, 3, 0.2, 9));
    let oracle = world.oracle(&trace);
    let exact = ComFedSv::exact(5).with_lambda(1e-3).run(&oracle).unwrap();
    let mc = ComFedSv {
        rank: 5,
        lambda: 1e-3,
        estimator: EstimatorKind::MonteCarlo {
            num_permutations: 300,
        },
        als_max_iters: 100,
        solver: Default::default(),
        seed: 1,
    }
    .run(&oracle)
    .unwrap();
    let rho = spearman_rho(&exact.values, &mc.values).unwrap();
    assert!(rho > 0.7, "exact vs MC rank correlation {rho}");
}

#[test]
fn fedsv_balance_equals_sum_of_round_utilities() {
    let world = small_world(13, false);
    let trace = world.train(&FlConfig::new(5, 3, 0.2, 13));
    let oracle = world.oracle(&trace);
    let fed = FedSv::exact().run(&oracle).unwrap();
    let expected: f64 = (0..trace.num_rounds())
        .map(|t| oracle.utility(t, trace.selected(t)))
        .sum();
    let total: f64 = fed.iter().sum();
    assert!((total - expected).abs() < 1e-9);
}

#[test]
fn training_improves_test_accuracy() {
    let world = small_world(21, false);
    let initial = world.test_accuracy(world.prototype.params());
    let trace = world.train(&FlConfig::new(25, 6, 0.3, 21));
    let final_acc = world.test_accuracy(&trace.final_params);
    assert!(
        final_acc > initial.max(0.3),
        "accuracy {initial} -> {final_acc}"
    );
}

#[test]
fn oracle_call_counting_reflects_work() {
    // The Fig-8 cost model depends on call counting being correct across
    // the whole stack: FedSV must cost (much) less than ground truth.
    let world = small_world(31, false);
    let trace = world.train(&FlConfig::new(4, 2, 0.2, 31));

    let oracle_fed = world.oracle(&trace);
    oracle_fed.reset_counter();
    let _ = FedSv::exact().run(&oracle_fed).unwrap();
    let fed_calls = oracle_fed.loss_evaluations();

    let oracle_gt = world.oracle(&trace);
    oracle_gt.reset_counter();
    let _ = ExactShapley.run(&oracle_gt).unwrap();
    let gt_calls = oracle_gt.loss_evaluations();

    assert!(fed_calls > 0 && gt_calls > 0);
    assert!(
        fed_calls < gt_calls,
        "FedSV calls {fed_calls} should be below ground-truth calls {gt_calls}"
    );
}
