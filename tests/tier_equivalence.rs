//! End-to-end determinism-tier equivalence: the `Fast` tier may reorder
//! floating-point reductions within the documented ε, but a valuation
//! run's *conclusions* — which clients matter most — must not change.
//! Five seeded worlds, FedSV and ComFedSV, `BitExact` vs `Fast`.

use comfedsv::prelude::*;
use fedval_linalg::DeterminismTier;

/// Client indices sorted by descending value — the ranking a valuation
/// consumer would act on. Ties broken by client index so the comparison
/// is deterministic.
fn ranking(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .expect("valuation produced NaN")
            .then(a.cmp(&b))
    });
    idx
}

#[test]
fn fast_tier_preserves_client_ranking_across_seeded_worlds() {
    for seed in [1u64, 7, 11, 21, 42] {
        let world = ExperimentBuilder::synthetic(true)
            .num_clients(6)
            .samples_per_client(40)
            .test_samples(80)
            .seed(seed)
            .duplicate(0, 5)
            .build();
        let trace = world.train(&FlConfig::new(6, 3, 0.2, seed));
        let oracle = world.oracle(&trace);
        // Fresh-cache oracles pinned to each tier: cached cells from one
        // tier must never leak into the other run.
        let exact_oracle = oracle.isolated_with_tier(DeterminismTier::BitExact);
        let fast_oracle = oracle.isolated_with_tier(DeterminismTier::Fast);

        let fed_exact = FedSv::exact().run(&exact_oracle).unwrap();
        let fed_fast = FedSv::exact().run(&fast_oracle).unwrap();
        assert_eq!(
            ranking(&fed_exact),
            ranking(&fed_fast),
            "seed {seed}: FedSV ranking diverged between tiers\n  bit_exact {fed_exact:?}\n  fast      {fed_fast:?}"
        );

        let com_exact = ComFedSv::exact(5)
            .with_lambda(1e-3)
            .run(&exact_oracle)
            .unwrap();
        let com_fast = ComFedSv::exact(5)
            .with_lambda(1e-3)
            .run(&fast_oracle)
            .unwrap();
        assert_eq!(
            ranking(&com_exact.values),
            ranking(&com_fast.values),
            "seed {seed}: ComFedSV ranking diverged between tiers\n  bit_exact {:?}\n  fast      {:?}",
            com_exact.values,
            com_fast.values
        );

        // The values themselves stay close in absolute terms — the tiers
        // disagree by reduction-reorder noise, not by model quality.
        let scale = fed_exact
            .iter()
            .map(|v| v.abs())
            .fold(f64::MIN_POSITIVE, f64::max);
        for (a, b) in fed_exact.iter().zip(&fed_fast) {
            assert!(
                (a - b).abs() <= 1e-6 * scale.max(1.0),
                "seed {seed}: FedSV value drift {a} vs {b}"
            );
        }
    }
}
