//! The cache tier's end-to-end correctness bar: every seeded valuation
//! (all 7 registered methods × 5 seeded worlds) is bit-identical with
//! the shared cell cache enabled, under adversarial eviction pressure
//! (a one-cell memory budget), and across a simulated process restart
//! (fresh cache warmed from the disk spill of the previous one).
//!
//! Sharing and eviction may change *when* a cell is computed — never
//! its bits: cells are pure functions of the fingerprinted trace, and
//! recompute-on-miss is therefore free of correctness risk. This test
//! is the repo-level enforcement of that claim.

use comfedsv::prelude::*;
use fedval_cache::CellCache;
use std::path::PathBuf;
use std::sync::Arc;

const SEEDS: [u64; 5] = [1, 7, 11, 21, 42];

fn build_world(seed: u64) -> (World, TrainingTrace) {
    let world = ExperimentBuilder::synthetic(true)
        .num_clients(5)
        .samples_per_client(30)
        .test_samples(60)
        .seed(seed)
        .build();
    let trace = world.train(&FlConfig::new(4, 3, 0.2, seed));
    (world, trace)
}

fn session(seed: u64) -> ValuationSession {
    ValuationSession::builder()
        .rank(3)
        .permutations(30)
        .samples(80)
        .seed(seed)
        .build()
}

/// Runs every registered method against `oracle`, returning
/// `(method, values)` pairs in registry order.
fn sweep(oracle: &UtilityOracle<'_>, seed: u64) -> Vec<(String, Vec<f64>)> {
    let mut session = session(seed);
    session
        .method_names()
        .into_iter()
        .map(|name| {
            let report = session
                .run(&name, oracle)
                .unwrap_or_else(|e| panic!("method {name} failed: {e}"));
            (name, report.values)
        })
        .collect()
}

fn assert_sweeps_eq(a: &[(String, Vec<f64>)], b: &[(String, Vec<f64>)], context: &str) {
    assert_eq!(a.len(), b.len());
    for ((name_a, va), (_, vb)) in a.iter().zip(b) {
        assert_eq!(va.len(), vb.len());
        for (i, (x, y)) in va.iter().zip(vb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: {name_a} client {i} diverged ({x} vs {y})"
            );
        }
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fedval-cache-equivalence-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn all_seeded_valuations_are_bit_identical_with_shared_cache() {
    for seed in SEEDS {
        let (world, trace) = build_world(seed);
        let baseline = sweep(&world.oracle(&trace), seed);

        let cache = CellCache::in_memory(fedval_cache::DEFAULT_MEM_BUDGET_BYTES);
        let shared_oracle = world.oracle(&trace).with_shared_cache(Arc::clone(&cache));
        let shared = sweep(&shared_oracle, seed);
        assert_sweeps_eq(&baseline, &shared, &format!("seed {seed}, shared cache"));
    }
}

#[test]
fn all_seeded_valuations_are_bit_identical_under_eviction_pressure() {
    for seed in SEEDS {
        let (world, trace) = build_world(seed);
        let baseline = sweep(&world.oracle(&trace), seed);

        // A one-cell budget evicts essentially every completed cell;
        // each method recomputes misses, and the bits must not move.
        let cache = CellCache::in_memory(1);
        let starved_oracle = world.oracle(&trace).with_shared_cache(Arc::clone(&cache));
        let starved = sweep(&starved_oracle, seed);
        assert_sweeps_eq(
            &baseline,
            &starved,
            &format!("seed {seed}, eviction pressure"),
        );
        assert!(
            cache.stats().evictions > 0,
            "seed {seed}: one-cell budget never evicted"
        );
    }
}

#[test]
fn poisoned_disk_caches_degrade_to_recompute_never_wrong_values() {
    let seed = 7;
    let dir = tmpdir("poison");
    let (world, trace) = build_world(seed);

    // Cold run spills one segment per (trace, tier) group.
    let cold = {
        let cache = CellCache::with_dir(fedval_cache::DEFAULT_MEM_BUDGET_BYTES, &dir);
        let oracle = world.oracle(&trace).with_shared_cache(Arc::clone(&cache));
        let cold = sweep(&oracle, seed);
        cache.flush();
        cold
    };
    let segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "cells"))
        .collect();
    assert!(!segments.is_empty(), "cold run must have spilled a segment");
    let pristine: Vec<Vec<u8>> = segments.iter().map(|p| std::fs::read(p).unwrap()).collect();

    // Three poisons: a truncated tail (crashed writer), one flipped
    // checksum byte (bit rot), and a wrong-version header (stale
    // format). Each must log a corrupt event and change no bits.
    type Poison = fn(&mut Vec<u8>);
    let poisons: [(&str, Poison); 3] = [
        ("truncated file", |bytes| {
            bytes.truncate(bytes.len() - 5);
        }),
        ("flipped checksum byte", |bytes| {
            // First record starts at 32; its checksum occupies bytes
            // 20..28 of the record.
            bytes[32 + 20] ^= 0x01;
        }),
        ("wrong-version header", |bytes| {
            bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        }),
    ];
    for (label, poison) in poisons {
        for (path, bytes) in segments.iter().zip(&pristine) {
            let mut poisoned = bytes.clone();
            poison(&mut poisoned);
            std::fs::write(path, poisoned).unwrap();
        }
        let cache = CellCache::with_dir(fedval_cache::DEFAULT_MEM_BUDGET_BYTES, &dir);
        let oracle = world.oracle(&trace).with_shared_cache(Arc::clone(&cache));
        let warm = sweep(&oracle, seed);
        assert_sweeps_eq(&cold, &warm, &format!("poison: {label}"));
        assert!(
            cache.stats().corrupt_events > 0,
            "{label}: anomaly was not logged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_seeded_valuations_are_bit_identical_across_disk_warm_restart() {
    for seed in SEEDS {
        let dir = tmpdir(&format!("seed{seed}"));
        let (world, trace) = build_world(seed);

        // Cold "process": evaluate everything, spill to disk.
        let cold = {
            let cache = CellCache::with_dir(fedval_cache::DEFAULT_MEM_BUDGET_BYTES, &dir);
            let oracle = world.oracle(&trace).with_shared_cache(Arc::clone(&cache));
            let cold = sweep(&oracle, seed);
            assert!(cache.flush() > 0 || cache.stats().spilled_cells > 0);
            cold
        };

        // Warm "process": a brand-new cache over the same directory
        // serves every cell from disk without recomputation.
        let cache = CellCache::with_dir(fedval_cache::DEFAULT_MEM_BUDGET_BYTES, &dir);
        let oracle = world.oracle(&trace).with_shared_cache(Arc::clone(&cache));
        assert!(
            oracle.disk_warm_cells() > 0,
            "seed {seed}: no cells loaded from disk"
        );
        let before = oracle.loss_evaluations();
        let warm = sweep(&oracle, seed);
        assert_eq!(
            oracle.loss_evaluations(),
            before,
            "seed {seed}: disk-warm sweep recomputed cells"
        );
        assert_sweeps_eq(&cold, &warm, &format!("seed {seed}, disk-warm restart"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
