//! Property-based tests (proptest) over the core valuation machinery:
//! Shapley axioms on random games, completion-solver invariants, and
//! metric bounds.

use comfedsv::metrics::{jaccard_index, relative_difference, spearman_rho, Ecdf};
use comfedsv::shapley::exact_shapley;
use fedval_fl::Subset;
use fedval_mc::{AlsConfig, CompletionProblem, MatrixCompleter};
use proptest::prelude::*;

/// A random game over `n` players encoded as utilities per coalition
/// bitmask (index 0 = empty coalition, pinned to 0).
fn random_game(n: usize) -> impl Strategy<Value = Vec<f64>> {
    let size = 1usize << n;
    proptest::collection::vec(-10.0..10.0f64, size).prop_map(|mut v| {
        v[0] = 0.0;
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shapley_balance_on_random_games(game in random_game(5)) {
        let v = exact_shapley(5, |s| game[s.bits() as usize]);
        let total: f64 = v.iter().sum();
        let grand = game[(1usize << 5) - 1];
        prop_assert!((total - grand).abs() < 1e-9);
    }

    #[test]
    fn shapley_additivity_on_random_games(
        g1 in random_game(4),
        g2 in random_game(4),
    ) {
        let v1 = exact_shapley(4, |s| g1[s.bits() as usize]);
        let v2 = exact_shapley(4, |s| g2[s.bits() as usize]);
        let vsum = exact_shapley(4, |s| g1[s.bits() as usize] + g2[s.bits() as usize]);
        for i in 0..4 {
            prop_assert!((vsum[i] - (v1[i] + v2[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn shapley_symmetry_after_symmetrization(game in random_game(4)) {
        // Symmetrize players 0 and 1 by averaging over the swap; the
        // resulting game must give them equal values.
        let swap = |s: Subset| {
            let mut t = s.without(0).without(1);
            if s.contains(0) { t = t.with(1); }
            if s.contains(1) { t = t.with(0); }
            t
        };
        let sym = |s: Subset| {
            0.5 * (game[s.bits() as usize] + game[swap(s).bits() as usize])
        };
        let v = exact_shapley(4, sym);
        prop_assert!((v[0] - v[1]).abs() < 1e-9);
    }

    #[test]
    fn shapley_null_player_gets_zero(game in random_game(4)) {
        // Force player 3 to be null by ignoring its membership.
        let v = exact_shapley(4, |s| game[s.without(3).bits() as usize]);
        prop_assert!(v[3].abs() < 1e-9);
    }

    #[test]
    fn als_objective_never_increases(
        seed in 0u64..1000,
        rank in 1usize..4,
    ) {
        let mut p = CompletionProblem::new(6);
        // Deterministic pseudo-random observations from the seed.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for row in 0..6 {
            for col in 0..8u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if state % 3 != 0 {
                    let v = ((state >> 33) % 1000) as f64 / 100.0 - 5.0;
                    p.add_observation(row, col, v);
                }
            }
        }
        let trace = AlsConfig::new(rank)
            .with_lambda(0.1)
            .with_max_iters(15)
            .complete(&p)
            .unwrap()
            .objective_trace;
        for w in trace.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-7, "objective increased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn relative_difference_is_bounded_for_positive_inputs(
        a in 0.0001..100.0f64,
        b in 0.0001..100.0f64,
    ) {
        let d = relative_difference(a, b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - relative_difference(b, a)).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_bounded_and_symmetric(
        xs in proptest::collection::vec(-100.0..100.0f64, 3..20),
    ) {
        let ys: Vec<f64> = xs.iter().rev().copied().collect();
        if let Some(rho) = spearman_rho(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho));
            let rho_rev = spearman_rho(&ys, &xs).unwrap();
            prop_assert!((rho - rho_rev).abs() < 1e-9);
        }
    }

    #[test]
    fn jaccard_bounds_and_identity(
        a in proptest::collection::vec(0usize..30, 0..15),
        b in proptest::collection::vec(0usize..30, 0..15),
    ) {
        let j = jaccard_index(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((jaccard_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_is_monotone_and_normalized(
        sample in proptest::collection::vec(-50.0..50.0f64, 1..40),
    ) {
        let e = Ecdf::new(sample.clone()).unwrap();
        let mut prev = 0.0;
        for i in -50..=50 {
            let t = i as f64;
            let v = e.eval(t);
            prop_assert!(v >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
        prop_assert!((e.eval(1e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subset_operations_are_consistent(
        bits in 0u64..(1 << 12),
        i in 0usize..12,
    ) {
        let s = Subset::from_bits(bits);
        prop_assert!(s.with(i).contains(i));
        prop_assert!(!s.without(i).contains(i));
        prop_assert_eq!(s.with(i).without(i), s.without(i));
        prop_assert!(s.is_subset_of(s.with(i)));
        prop_assert_eq!(s.union(s), s);
        prop_assert_eq!(s.intersection(s), s);
        prop_assert_eq!(s.members().len(), s.len());
    }
}
