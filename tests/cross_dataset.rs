//! Cross-dataset integration tests: every paper task (synthetic, sim-MNIST,
//! sim-Fashion, sim-CIFAR) must flow through training and valuation, with
//! the fairness construction behaving identically everywhere.

use comfedsv::metrics::relative_difference;
use comfedsv::prelude::*;

fn tiny_world(kind: DatasetKind, seed: u64) -> World {
    ExperimentBuilder::new(kind)
        .num_clients(5)
        .samples_per_client(24)
        .test_samples(40)
        .seed(seed)
        .build()
}

#[test]
fn all_dataset_kinds_train_and_value() {
    for kind in DatasetKind::suite(true) {
        let world = tiny_world(kind, 2);
        let trace = world.train(&FlConfig::new(3, 2, 0.15, 2));
        assert_eq!(trace.num_rounds(), 3, "{}", kind.name());
        let oracle = world.oracle(&trace);
        let out = ComFedSv::exact(3).with_lambda(0.01).run(&oracle).unwrap();
        assert_eq!(out.values.len(), 5, "{}", kind.name());
        assert!(
            out.values.iter().all(|v| v.is_finite()),
            "{}: non-finite values",
            kind.name()
        );
        let fed = FedSv::exact().run(&oracle).unwrap();
        assert!(fed.iter().all(|v| v.is_finite()), "{}", kind.name());
    }
}

#[test]
fn iid_and_non_iid_partitions_differ() {
    let iid = tiny_world(DatasetKind::SimMnist { non_iid: false }, 7);
    let non_iid = tiny_world(DatasetKind::SimMnist { non_iid: true }, 7);
    // Non-IID sharding concentrates classes: the max per-client class count
    // must be higher than under IID.
    let max_class_frac = |w: &World| {
        w.clients
            .iter()
            .map(|c| {
                let counts = c.class_counts();
                let max = counts.iter().max().copied().unwrap_or(0);
                max as f64 / c.len().max(1) as f64
            })
            .fold(0.0_f64, f64::max)
    };
    assert!(max_class_frac(&non_iid) > max_class_frac(&iid));
}

#[test]
fn duplicated_clients_identical_local_models_on_every_task() {
    for kind in DatasetKind::suite(true) {
        let world = ExperimentBuilder::new(kind)
            .num_clients(5)
            .samples_per_client(24)
            .test_samples(40)
            .duplicate(0, 4)
            .seed(3)
            .build();
        let trace = world.train(&FlConfig::new(3, 2, 0.15, 3));
        for r in &trace.rounds {
            assert_eq!(
                r.local_params[0],
                r.local_params[4],
                "{}: identical data must give identical local models",
                kind.name()
            );
        }
    }
}

#[test]
fn fully_participating_fedsv_is_symmetric_for_duplicates() {
    // With full participation every round, FedSV itself is symmetric — the
    // unfairness comes only from partial selection.
    let world = ExperimentBuilder::synthetic(true)
        .num_clients(4)
        .samples_per_client(30)
        .test_samples(50)
        .duplicate(0, 3)
        .seed(5)
        .build();
    let trace = world.train(&FlConfig::new(4, 4, 0.2, 5));
    let oracle = world.oracle(&trace);
    let fed = FedSv::exact().run(&oracle).unwrap();
    let d = relative_difference(fed[0], fed[3]);
    assert!(
        d < 1e-9,
        "full participation should be exactly fair, d = {d}"
    );
}

#[test]
fn models_match_dataset_dimensions() {
    for kind in DatasetKind::suite(false) {
        let world = tiny_world(kind, 9);
        // The prototype must evaluate on the test set without panicking.
        let loss = world.prototype.loss(&world.test);
        assert!(loss.is_finite(), "{}: initial loss {loss}", kind.name());
        assert!(loss > 0.0);
    }
}

#[test]
fn label_noise_lowers_a_client_value_on_average() {
    // A client with mostly flipped labels must be worth less than the
    // average clean client. Single runs are noisy (5 clients, 8 rounds),
    // so average the ground-truth valuation over several seeds.
    let mut poisoned_total = 0.0;
    let mut clean_total = 0.0;
    let seeds = [1u64, 2, 3, 13, 21];
    for &seed in &seeds {
        let world = ExperimentBuilder::synthetic(false)
            .num_clients(5)
            .samples_per_client(40)
            .test_samples(80)
            .label_noise(vec![(2, 0.8)])
            .seed(seed)
            .build();
        let trace = world.train(&FlConfig::new(8, 5, 0.3, seed));
        let oracle = world.oracle(&trace);
        let gt = ExactShapley.run(&oracle).unwrap();
        poisoned_total += gt[2];
        clean_total += (gt[0] + gt[1] + gt[3] + gt[4]) / 4.0;
    }
    let poisoned = poisoned_total / seeds.len() as f64;
    let clean = clean_total / seeds.len() as f64;
    assert!(
        poisoned < clean,
        "poisoned client mean value {poisoned} should be below clean mean {clean}"
    );
}
