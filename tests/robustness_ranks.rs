//! Tier-1 robustness contract: valuation must expose free riders.
//!
//! A free rider returns the broadcast model unchanged every round, so its
//! marginal contribution to any coalition is (approximately) zero; a
//! Shapley-style valuation that cannot put such clients *strictly below
//! every honest client* is not fit for the paper's reward-allocation use
//! case. This test pins that guarantee for FedSV and ComFedSV on the
//! robustness catalog's `free_riders` scenario, at both determinism
//! tiers and across seeds — so neither kernel work nor valuation
//! refactors can silently trade it away.

use comfedsv::prelude::*;
use fedval_linalg::DeterminismTier;

/// Asserts every bad client's value is strictly below every honest
/// client's value.
fn assert_bad_strictly_below_honest(label: &str, values: &[f64], bad: &[bool]) {
    let worst_honest = values
        .iter()
        .zip(bad)
        .filter(|&(_, &b)| !b)
        .map(|(v, _)| *v)
        .fold(f64::INFINITY, f64::min);
    for (i, (&v, &b)) in values.iter().zip(bad).enumerate() {
        if b {
            assert!(
                v < worst_honest,
                "{label}: free rider {i} (value {v}) not strictly below the \
                 worst honest client ({worst_honest}); values {values:?}"
            );
        }
    }
}

#[test]
fn fedsv_and_comfedsv_rank_free_riders_below_honest_clients_at_both_tiers() {
    let scenario = Scenario::free_riders();
    let bad = scenario.bad_clients();
    assert_eq!(scenario.num_bad(), 2, "catalog scenario changed shape");

    for seed in [3u64, 17, 29] {
        let world = scenario.build(seed);
        let trace = world.train(&scenario.fl_config(seed));
        let oracle = world.oracle(&trace);

        for tier in [DeterminismTier::BitExact, DeterminismTier::Fast] {
            // Fresh-cache oracle pinned to the tier: no cross-tier leaks.
            let tiered = oracle.isolated_with_tier(tier);

            let fed = FedSv::exact().run(&tiered).unwrap();
            assert_bad_strictly_below_honest(
                &format!("seed {seed} / {tier:?} / FedSV"),
                &fed,
                &bad,
            );

            let com = ComFedSv::exact(4)
                .with_lambda(1e-3)
                .with_seed(seed)
                .run(&tiered)
                .unwrap();
            assert_bad_strictly_below_honest(
                &format!("seed {seed} / {tier:?} / ComFedSV"),
                &com.values,
                &bad,
            );
        }
    }
}

#[test]
fn world_behaviors_flow_through_training_without_config_plumbing() {
    // The scenario's world carries its behaviors: training with a plain
    // behavior-free FlConfig must still produce free riders (their local
    // params equal the broadcast global every round).
    let scenario = Scenario::free_riders();
    let world = scenario.build(17);
    let trace = world.train(&FlConfig::new(4, 8, 0.2, 17));
    for round in &trace.rounds {
        assert_eq!(round.local_params[2], round.global_params);
        assert_eq!(round.local_params[5], round.global_params);
        assert_ne!(round.local_params[0], round.global_params);
    }
}
