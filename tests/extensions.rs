//! Integration tests for the extensions and the remaining Theorem-1
//! clause (ε-additivity): CCD++ pipeline parity, TMC estimation,
//! stochastic-FedAvg pipelines, and additivity under utility splitting.

use comfedsv::metrics::spearman_rho;
use comfedsv::prelude::*;
use comfedsv::shapley::Tmc;
use fedval_fl::UtilityOracle;

fn world(seed: u64) -> World {
    ExperimentBuilder::synthetic(true)
        .num_clients(6)
        .samples_per_client(40)
        .test_samples(80)
        .seed(seed)
        .build()
}

#[test]
fn ccd_pipeline_matches_als_pipeline() {
    let w = world(1);
    let trace = w.train(&FlConfig::new(6, 3, 0.2, 1));
    let oracle = w.oracle(&trace);
    let als = ComFedSv::exact(5)
        .with_lambda(1e-2)
        .with_solver(CompletionSolver::Als)
        .run(&oracle)
        .unwrap();
    let ccd = ComFedSv::exact(5)
        .with_lambda(1e-2)
        .with_solver(CompletionSolver::Ccd)
        .run(&oracle)
        .unwrap();
    let rho = spearman_rho(&als.values, &ccd.values).unwrap();
    assert!(rho > 0.9, "ALS vs CCD++ pipeline rank agreement {rho}");
    // Objectives must be in the same ballpark (same problem, same λ).
    let oa = als.objective_trace.last().unwrap();
    let oc = ccd.objective_trace.last().unwrap();
    assert!(
        (oa - oc).abs() <= 0.5 * oa.abs().max(*oc),
        "objective mismatch: ALS {oa}, CCD {oc}"
    );
}

#[test]
fn tmc_tracks_ground_truth_with_fewer_calls() {
    let w = world(3);
    let trace = w.train(&FlConfig::new(5, 3, 0.2, 3));

    let oracle_gt = w.oracle(&trace);
    oracle_gt.reset_counter();
    let gt = ExactShapley.run(&oracle_gt).unwrap();
    let gt_calls = oracle_gt.loss_evaluations();

    let oracle_tmc = w.oracle(&trace);
    oracle_tmc.reset_counter();
    let out = Tmc {
        permutations: 60,
        truncation_tol: 0.05,
        seed: 2,
        ..Tmc::default()
    }
    .run(&oracle_tmc)
    .unwrap();
    let tmc_calls = oracle_tmc.loss_evaluations();

    let rho = spearman_rho(&out.values, &gt).unwrap();
    assert!(rho > 0.6, "TMC vs exact ground truth rho {rho}");
    assert!(
        tmc_calls < gt_calls,
        "TMC calls {tmc_calls} should undercut exact enumeration {gt_calls}"
    );
}

#[test]
fn stochastic_fedavg_pipeline_runs_end_to_end() {
    let w = world(5);
    let cfg = FlConfig::new(6, 3, 0.2, 5)
        .with_local_steps(3)
        .with_batch_size(8);
    let trace = w.train(&cfg);
    let oracle = w.oracle(&trace);
    let out = ComFedSv::exact(5).with_lambda(1e-2).run(&oracle).unwrap();
    assert!(out.values.iter().all(|v| v.is_finite()));
    let gt = ExactShapley.run(&oracle).unwrap();
    let rho = spearman_rho(&out.values, &gt).unwrap();
    assert!(rho > 0.5, "stochastic-trace pipeline quality {rho}");
}

#[test]
fn ground_truth_additivity_under_test_set_split() {
    // Theorem 1's additivity clause: split the server test set into two
    // halves defining utilities U1, U2 with U = (U1 + U2)/2 (mean losses
    // over equal halves average). The ground-truth valuation is linear in
    // the utility, so s = (s1 + s2)/2 exactly.
    let w = world(7);
    let trace = w.train(&FlConfig::new(5, 3, 0.2, 7));

    let n_test = w.test.len();
    let half = n_test / 2;
    let first: Vec<usize> = (0..half).collect();
    let second: Vec<usize> = (half..2 * half).collect();
    let even: Vec<usize> = (0..2 * half).collect();
    let test_a = w.test.subset(&first);
    let test_b = w.test.subset(&second);
    let test_full = w.test.subset(&even);

    let oracle_full = UtilityOracle::new(&trace, w.prototype.as_ref(), &test_full);
    let oracle_a = UtilityOracle::new(&trace, w.prototype.as_ref(), &test_a);
    let oracle_b = UtilityOracle::new(&trace, w.prototype.as_ref(), &test_b);

    let s = ExactShapley.run(&oracle_full).unwrap();
    let s1 = ExactShapley.run(&oracle_a).unwrap();
    let s2 = ExactShapley.run(&oracle_b).unwrap();
    for i in 0..w.num_clients() {
        let combined = 0.5 * (s1[i] + s2[i]);
        assert!(
            (s[i] - combined).abs() < 1e-10,
            "additivity violated for client {i}: {} vs {}",
            s[i],
            combined
        );
    }
}

#[test]
fn comfedsv_approximate_additivity_under_test_set_split() {
    // The ε-additivity clause for the completed metric: the combined
    // valuation is close (not exact — three separate completions).
    let w = world(9);
    let trace = w.train(&FlConfig::new(5, 3, 0.2, 9));

    let half = w.test.len() / 2;
    let first: Vec<usize> = (0..half).collect();
    let second: Vec<usize> = (half..2 * half).collect();
    let even: Vec<usize> = (0..2 * half).collect();
    let test_a = w.test.subset(&first);
    let test_b = w.test.subset(&second);
    let test_full = w.test.subset(&even);

    let cfg = ComFedSv::exact(5).with_lambda(1e-3);
    let s = cfg
        .run(&UtilityOracle::new(
            &trace,
            w.prototype.as_ref(),
            &test_full,
        ))
        .unwrap()
        .values;
    let s1 = cfg
        .run(&UtilityOracle::new(&trace, w.prototype.as_ref(), &test_a))
        .unwrap()
        .values;
    let s2 = cfg
        .run(&UtilityOracle::new(&trace, w.prototype.as_ref(), &test_b))
        .unwrap()
        .values;

    let scale = s.iter().map(|v| v.abs()).fold(0.0_f64, f64::max).max(1e-12);
    for i in 0..w.num_clients() {
        let combined = 0.5 * (s1[i] + s2[i]);
        let err = (s[i] - combined).abs() / scale;
        assert!(
            err < 0.35,
            "client {i}: additivity gap {err} (s = {}, combined = {combined})",
            s[i]
        );
    }
}

#[test]
fn dirichlet_partition_feeds_the_pipeline() {
    use fedval_data::{partition_dirichlet, Dataset};
    let base = world(11);
    let pool = Dataset::concat(&base.clients.iter().collect::<Vec<_>>()).unwrap();
    let clients = partition_dirichlet(&pool, 6, 0.5, 11);
    let w = comfedsv::experiments::World {
        clients,
        test: base.test.clone(),
        prototype: base.prototype.clone_model(),
        kind: base.kind,
        behaviors: Vec::new(),
    };
    // partition_dirichlet rebalances starved shards, so every client
    // trains on at least one example.
    let trace = w.train(&FlConfig::new(4, 3, 0.2, 11));
    let oracle = w.oracle(&trace);
    let out = ComFedSv::exact(4).with_lambda(1e-2).run(&oracle).unwrap();
    assert_eq!(out.values.len(), 6);
    assert!(out.values.iter().all(|v| v.is_finite()));
}
