//! Equivalence suite for the `Valuator` redesign: every strategy object
//! must be **bit-identical** to the legacy free function it replaced on a
//! seeded world, and the old panic paths must now surface as typed
//! [`ValuationError`]s.

#![allow(deprecated)]

use comfedsv::prelude::*;
use comfedsv::shapley::{
    fedsv, fedsv_monte_carlo, ground_truth_valuation, group_testing_shapley, tmc_shapley,
    GroupTesting, Tmc, ValuationSession,
};

fn seeded_world() -> (World, TrainingTrace) {
    let world = ExperimentBuilder::synthetic(true)
        .num_clients(6)
        .samples_per_client(40)
        .test_samples(80)
        .seed(23)
        .build();
    let trace = world.train(&FlConfig::new(6, 3, 0.2, 23));
    (world, trace)
}

#[test]
fn comfedsv_valuator_matches_legacy_pipeline_bitwise() {
    let (world, trace) = seeded_world();
    let oracle = world.oracle(&trace);
    let cfg = ComFedSv::exact(5).with_lambda(1e-3).with_seed(23);
    let legacy = comfedsv_pipeline(&oracle, &cfg);
    let new = cfg.run(&oracle).unwrap();
    assert_eq!(legacy.values, new.values);
    assert_eq!(legacy.objective_trace, new.objective_trace);
    // Through the trait object as well.
    let boxed: Box<dyn Valuator> = Box::new(cfg.clone());
    let report = boxed.value(&oracle, &mut RunContext::new()).unwrap();
    assert_eq!(report.values, legacy.values);
}

#[test]
fn comfedsv_monte_carlo_matches_legacy_bitwise() {
    let (world, trace) = seeded_world();
    let oracle = world.oracle(&trace);
    let cfg = ComFedSv {
        rank: 4,
        lambda: 1e-3,
        estimator: EstimatorKind::MonteCarlo {
            num_permutations: 60,
        },
        als_max_iters: 50,
        solver: Default::default(),
        seed: 5,
    };
    let legacy = comfedsv_pipeline(&oracle, &cfg);
    let new = cfg.run(&oracle).unwrap();
    assert_eq!(legacy.values, new.values);
    assert_eq!(legacy.permutations, new.permutations);
}

#[test]
fn fedsv_valuators_match_legacy_bitwise() {
    let (world, trace) = seeded_world();
    let oracle = world.oracle(&trace);
    assert_eq!(fedsv(&oracle), FedSv::exact().run(&oracle).unwrap());

    let mc_cfg = FedSvConfig {
        permutations_per_round: Some(80),
        seed: 7,
    };
    assert_eq!(
        fedsv_monte_carlo(&oracle, &mc_cfg),
        FedSv::monte_carlo(mc_cfg.clone()).run(&oracle).unwrap()
    );
    let boxed: Box<dyn Valuator> = Box::new(FedSv::monte_carlo(mc_cfg));
    let report = boxed.value(&oracle, &mut RunContext::new()).unwrap();
    assert_eq!(report.method, "fedsv-mc");
    assert_eq!(
        report.values,
        FedSv::monte_carlo(FedSvConfig {
            permutations_per_round: Some(80),
            seed: 7,
        })
        .run(&oracle)
        .unwrap()
    );
}

#[test]
fn tmc_valuator_matches_legacy_bitwise() {
    let (world, trace) = seeded_world();
    let oracle = world.oracle(&trace);
    let cfg = Tmc {
        permutations: 40,
        truncation_tol: 0.02,
        seed: 3,
        ..Tmc::default()
    };
    let legacy = tmc_shapley(&oracle, &cfg);
    let new = cfg.run(&oracle).unwrap();
    assert_eq!(legacy.values, new.values);
    assert_eq!(legacy.truncated_fraction, new.truncated_fraction);
}

#[test]
fn group_testing_valuator_matches_legacy_bitwise() {
    let (world, trace) = seeded_world();
    let oracle = world.oracle(&trace);
    let cfg = GroupTesting {
        num_samples: 150,
        seed: 11,
    };
    assert_eq!(
        group_testing_shapley(&oracle, &cfg),
        cfg.run(&oracle).unwrap()
    );
}

#[test]
fn exact_valuator_matches_legacy_ground_truth_bitwise() {
    let (world, trace) = seeded_world();
    let oracle = world.oracle(&trace);
    assert_eq!(
        ground_truth_valuation(&oracle),
        ExactShapley.run(&oracle).unwrap()
    );
}

#[test]
fn session_sweep_is_bit_identical_to_direct_valuators() {
    let (world, trace) = seeded_world();
    let oracle = world.oracle(&trace);
    let mut session = ValuationSession::builder().rank(4).seed(23).build();
    let direct = ComFedSv::exact(4)
        .with_lambda(1e-3)
        .with_seed(23)
        .run(&oracle)
        .unwrap();
    let via_session = session.run("comfedsv", &oracle).unwrap();
    // Session defaults: rank 4 (set above), λ 1e-3 (default), seed 23.
    assert_eq!(via_session.values, direct.values);
}

#[test]
fn all_methods_box_as_dyn_valuator() {
    let (world, trace) = seeded_world();
    let methods: Vec<Box<dyn Valuator>> = vec![
        Box::new(ExactShapley),
        Box::new(FedSv::exact()),
        Box::new(FedSv::monte_carlo(FedSvConfig::default())),
        Box::new(ComFedSv::exact(4).with_lambda(1e-3)),
        Box::new(Tmc {
            permutations: 20,
            truncation_tol: 0.01,
            seed: 1,
            ..Tmc::default()
        }),
        Box::new(GroupTesting {
            num_samples: 60,
            seed: 1,
        }),
    ];
    for m in methods {
        // Fresh oracle per method: cells_evaluated counts real model
        // evaluations, and a shared cache would zero it for later runs.
        let oracle = world.oracle(&trace);
        let report = m.value(&oracle, &mut RunContext::new()).unwrap();
        assert_eq!(report.values.len(), 6, "{}", m.name());
        assert!(report.values.iter().all(|v| v.is_finite()), "{}", m.name());
        assert!(report.diagnostics.cells_evaluated > 0, "{}", m.name());
    }
}

#[test]
fn too_many_clients_is_a_typed_error_at_n17() {
    // 17 clients: one past the exact-enumeration gate.
    let world = ExperimentBuilder::synthetic(false)
        .num_clients(17)
        .samples_per_client(8)
        .test_samples(20)
        .seed(1)
        .build();
    let trace = world.train(&FlConfig::new(1, 2, 0.2, 1));
    let oracle = world.oracle(&trace);
    assert_eq!(
        ExactShapley.run(&oracle).unwrap_err(),
        ValuationError::TooManyClients {
            clients: 17,
            max: comfedsv::shapley::MAX_EXACT_CLIENTS
        }
    );
    assert_eq!(
        ComFedSv::exact(4).run(&oracle).unwrap_err(),
        ValuationError::TooManyClients {
            clients: 17,
            max: comfedsv::shapley::MAX_EXACT_CLIENTS
        }
    );
    // Exact FedSV trips on the round-0 everyone-heard cohort of 17.
    assert!(matches!(
        FedSv::exact().run(&oracle).unwrap_err(),
        ValuationError::CohortTooLarge {
            round: 0,
            cohort: 17,
            ..
        }
    ));
}

#[test]
fn empty_trace_is_rejected_by_every_method() {
    let world = ExperimentBuilder::synthetic(false)
        .num_clients(4)
        .samples_per_client(10)
        .test_samples(20)
        .seed(2)
        .build();
    let trace = world.train(&FlConfig::new(0, 2, 0.2, 2));
    let oracle = world.oracle(&trace);
    let methods: Vec<Box<dyn Valuator>> = vec![
        Box::new(ExactShapley),
        Box::new(FedSv::exact()),
        Box::new(FedSv::monte_carlo(FedSvConfig::default())),
        Box::new(ComFedSv::exact(3)),
        Box::new(Tmc::default()),
        Box::new(GroupTesting {
            num_samples: 10,
            seed: 0,
        }),
    ];
    for m in methods {
        assert_eq!(
            m.value(&oracle, &mut RunContext::new()).unwrap_err(),
            ValuationError::EmptyTrace,
            "{}",
            m.name()
        );
    }
}

#[test]
fn invalid_sampling_budgets_are_typed_errors() {
    let (world, trace) = seeded_world();
    let oracle = world.oracle(&trace);
    assert_eq!(
        Tmc {
            permutations: 0,
            truncation_tol: 0.0,
            seed: 0,
            ..Tmc::default()
        }
        .run(&oracle)
        .unwrap_err(),
        ValuationError::NoPermutations
    );
    assert_eq!(
        GroupTesting {
            num_samples: 0,
            seed: 0
        }
        .run(&oracle)
        .unwrap_err(),
        ValuationError::NoSamples
    );
    assert_eq!(
        FedSv::monte_carlo(FedSvConfig {
            permutations_per_round: Some(0),
            seed: 0
        })
        .run(&oracle)
        .unwrap_err(),
        ValuationError::NoPermutations
    );
}
