//! Integration tests validating the paper's theory on real training runs:
//! low-rankness of the utility matrix (Example 2 / Propositions 1–2) and
//! the Observation-1 unfairness probability.

use comfedsv::prelude::*;
use comfedsv::shapley::observation::{
    simulate_unfairness_probability, unfairness_probability, UnfairnessParams,
};
use comfedsv::shapley::theory::{
    empirical_lipschitz, path_length, prop1_rank_bound, prop2_rank_bound,
};
use fedval_fl::full_utility_matrix;
use fedval_linalg::{eps_rank_upper_bound, singular_values};

fn logistic_world(seed: u64) -> World {
    ExperimentBuilder::synthetic(false)
        .num_clients(6)
        .samples_per_client(40)
        .test_samples(80)
        .regularization(0.1) // strong convexity for Prop 2
        .seed(seed)
        .build()
}

#[test]
fn utility_matrix_is_approximately_low_rank() {
    // Example 2: only a few singular values dominate.
    let world = logistic_world(1);
    let lr = LearningRate::proposition2(0.1, 4.0);
    let cfg = FlConfig::new(12, 3, 0.0, 1).with_learning_rate(lr);
    let trace = world.train(&cfg);
    let oracle = world.oracle(&trace);
    let u = full_utility_matrix(&oracle);
    let sv = singular_values(&u).unwrap();
    assert!(sv[0] > 0.0, "utility matrix should be non-trivial");
    // Dominance: the top 5 singular values carry almost all of the energy.
    let total: f64 = sv.iter().map(|s| s * s).sum();
    let top5: f64 = sv.iter().take(5).map(|s| s * s).sum();
    assert!(
        top5 / total > 0.99,
        "top-5 energy fraction {}",
        top5 / total
    );
}

#[test]
fn eps_rank_respects_proposition_bounds() {
    let world = logistic_world(2);
    let lr = LearningRate::proposition2(0.1, 4.0);
    let cfg = FlConfig::new(10, 3, 0.0, 2).with_learning_rate(lr);
    let trace = world.train(&cfg);
    let oracle = world.oracle(&trace);
    let u = full_utility_matrix(&oracle);

    let losses: Vec<f64> = (0..trace.num_rounds())
        .map(|t| oracle.base_loss(t))
        .collect();
    let l1 = empirical_lipschitz(&trace, &losses).max(1e-3) * 4.0;
    let l2 = 4.0;
    let eps = 0.05 * u.max_abs().max(1e-12);

    let bound1 = prop1_rank_bound(
        l1,
        l2,
        trace.rounds[0].eta,
        trace.rounds.last().unwrap().eta,
        path_length(&trace),
        eps,
    );
    let bound2 = prop2_rank_bound(0.1, l1, l2, trace.num_rounds(), eps);
    let est = eps_rank_upper_bound(&u, eps).unwrap();
    assert!(
        est <= bound1.max(1),
        "eps-rank {est} vs Prop-1 bound {bound1}"
    );
    assert!(
        est <= bound2.max(1),
        "eps-rank {est} vs Prop-2 bound {bound2}"
    );
}

#[test]
fn eps_rank_grows_slowly_with_rounds() {
    // Prop 2: rank_ε = O(log T). Doubling T should not double the rank.
    let rank_for = |rounds: usize| {
        let world = logistic_world(3);
        let lr = LearningRate::proposition2(0.1, 4.0);
        let cfg = FlConfig::new(rounds, 3, 0.0, 3).with_learning_rate(lr);
        let trace = world.train(&cfg);
        let oracle = world.oracle(&trace);
        let u = full_utility_matrix(&oracle);
        let eps = 0.05 * u.max_abs().max(1e-12);
        eps_rank_upper_bound(&u, eps).unwrap()
    };
    let r8 = rank_for(8);
    let r16 = rank_for(16);
    assert!(
        r16 <= 2 * r8.max(1) + 2,
        "eps-rank grew too fast: T=8 -> {r8}, T=16 -> {r16}"
    );
}

#[test]
fn observation1_formula_matches_simulation_at_paper_setting() {
    // The paper's Example-1 setting: N = 10, m = 3, T = 10.
    let params = UnfairnessParams {
        rounds: 10,
        num_clients: 10,
        selected_per_round: 3,
    };
    for s in [1usize, 2, 3] {
        let analytic = unfairness_probability(&params, s);
        let simulated = simulate_unfairness_probability(&params, s, 30_000, 11);
        assert!(
            (analytic - simulated).abs() < 0.02,
            "s={s}: analytic {analytic}, simulated {simulated}"
        );
    }
}

#[test]
fn unfairness_is_substantial_at_paper_setting() {
    // The qualitative claim behind Example 1: with T = 10, m = 3, N = 10,
    // a gap of at least 1δ happens with high probability.
    let params = UnfairnessParams {
        rounds: 10,
        num_clients: 10,
        selected_per_round: 3,
    };
    let p1 = unfairness_probability(&params, 1);
    assert!(p1 > 0.3, "P_1 = {p1} should be substantial");
}

#[test]
fn non_increasing_learning_rate_assumption_holds() {
    let lr = LearningRate::proposition2(0.1, 4.0);
    for t in 0..50 {
        assert!(lr.at(t + 1) <= lr.at(t));
    }
    assert!(lr.is_non_increasing());
}
