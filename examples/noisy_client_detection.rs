//! Noisy-client detection: use data valuation to find low-quality clients.
//!
//! ```sh
//! cargo run --release --example noisy_client_detection
//! ```
//!
//! The paper's Section VII-C use case: progressively noisier clients
//! (client i has 5·i% of its examples corrupted) should be ranked
//! progressively lower by a good valuation. Prints each metric's ranking
//! and its Spearman correlation with the true quality ordering, plus a
//! flagging variant scored by Jaccard overlap. Quality is graded by label
//! corruption (see EXPERIMENTS.md for why feature noise is too weak a
//! signal on the simulated datasets).

use comfedsv::metrics::{bottom_k_indices, jaccard_index, spearman_rho};
use comfedsv::prelude::*;

fn main() {
    // Part 1: graded corruption (paper Fig. 6 construction).
    let n = 10usize;
    let noise: Vec<(usize, f64)> = (0..n).map(|i| (i, 0.05 * i as f64)).collect();
    let truth_scores: Vec<f64> = noise.iter().map(|&(_, f)| -f).collect();

    let world = ExperimentBuilder::sim_mnist(false)
        .num_clients(n)
        .samples_per_client(120)
        .test_samples(200)
        .label_noise(noise)
        .seed(3)
        .build();
    let trace = world.train(&FlConfig::new(10, 3, 0.1, 3));
    let oracle = world.oracle(&trace);

    let fed = FedSv::exact().run(&oracle).expect("small cohorts");
    let com = ComFedSv::exact(6)
        .with_lambda(0.01)
        .run(&oracle)
        .expect("10 clients is exact-safe")
        .values;
    let gt = ExactShapley.run(&oracle).expect("10 clients is exact-safe");

    println!("== graded corruption (client i: 5i% corrupted examples) ==");
    println!("{:>10}  {:>10}", "metric", "spearman");
    for (name, values) in [("groundtruth", &gt), ("FedSV", &fed), ("ComFedSV", &com)] {
        let rho = spearman_rho(values, &truth_scores).unwrap_or(f64::NAN);
        println!("{name:>10}  {rho:>10.4}");
    }

    // Part 2: label flipping — flag the 3 corrupted clients.
    let corrupted = vec![(1usize, 0.3), (4, 0.3), (7, 0.3)];
    let truth_set: Vec<usize> = corrupted.iter().map(|&(c, _)| c).collect();
    let world2 = ExperimentBuilder::sim_mnist(false)
        .num_clients(n)
        .samples_per_client(60)
        .test_samples(150)
        .label_noise(corrupted)
        .seed(4)
        .build();
    let trace2 = world2.train(&FlConfig::new(10, 3, 0.2, 4));
    let oracle2 = world2.oracle(&trace2);
    let fed2 = FedSv::exact().run(&oracle2).expect("small cohorts");
    let com2 = ComFedSv::exact(6)
        .with_lambda(0.01)
        .run(&oracle2)
        .expect("10 clients is exact-safe")
        .values;

    println!("\n== label flipping (clients 1, 4, 7 have 30% flipped labels) ==");
    for (name, values) in [("FedSV", &fed2), ("ComFedSV", &com2)] {
        let flagged = bottom_k_indices(values, truth_set.len());
        let j = jaccard_index(&flagged, &truth_set);
        println!("{name:>10}: flagged {flagged:?}, Jaccard with truth = {j:.3}");
    }
}
