//! Noisy-client detection: use data valuation to find low-quality clients.
//!
//! ```sh
//! cargo run --release --example noisy_client_detection
//! ```
//!
//! The paper's Section VII-C use case: progressively noisier clients
//! (client i has 5·i% of its examples corrupted) should be ranked
//! progressively lower by a good valuation. Prints each metric's ranking
//! and its Spearman correlation with the true quality ordering, then runs
//! the robustness catalog's `noisy_labels` scenario and scores every
//! valuation as a detector (ROC-AUC, precision@k, Jaccard overlap of the
//! flagged set). Quality is graded by label corruption (see
//! EXPERIMENTS.md for why feature noise is too weak a signal on the
//! simulated datasets).

use comfedsv::metrics::{bottom_k_indices, jaccard_index, spearman_rho};
use comfedsv::prelude::*;

fn main() {
    // Part 1: graded corruption (paper Fig. 6 construction).
    let n = 10usize;
    let noise: Vec<(usize, f64)> = (0..n).map(|i| (i, 0.05 * i as f64)).collect();
    let truth_scores: Vec<f64> = noise.iter().map(|&(_, f)| -f).collect();

    let world = ExperimentBuilder::sim_mnist(false)
        .num_clients(n)
        .samples_per_client(120)
        .test_samples(200)
        .label_noise(noise)
        .seed(3)
        .build();
    let trace = world.train(&FlConfig::new(10, 3, 0.1, 3));
    let oracle = world.oracle(&trace);

    let fed = FedSv::exact().run(&oracle).expect("small cohorts");
    let com = ComFedSv::exact(6)
        .with_lambda(0.01)
        .run(&oracle)
        .expect("10 clients is exact-safe")
        .values;
    let gt = ExactShapley.run(&oracle).expect("10 clients is exact-safe");

    println!("== graded corruption (client i: 5i% corrupted examples) ==");
    println!("{:>10}  {:>10}", "metric", "spearman");
    for (name, values) in [("groundtruth", &gt), ("FedSV", &fed), ("ComFedSV", &com)] {
        let rho = spearman_rho(values, &truth_scores).unwrap_or(f64::NAN);
        println!("{name:>10}  {rho:>10.4}");
    }

    // Part 2: the robustness catalog's noisy_labels scenario — behavior-
    // driven corruption with ground-truth bad-client labels, scored with
    // the detection metrics the robustness harness uses.
    let scenario = Scenario::noisy_labels();
    let world2 = scenario.build(4);
    let trace2 = world2.train(&scenario.fl_config(4));
    let oracle2 = world2.oracle(&trace2);
    let bad = scenario.bad_clients();
    let truth_set: Vec<usize> = bad
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i))
        .collect();
    let k = scenario.num_bad();
    let fed2 = FedSv::exact().run(&oracle2).expect("small cohorts");
    let com2 = ComFedSv::exact(4)
        .with_lambda(0.01)
        .run(&oracle2)
        .expect("8 clients is exact-safe")
        .values;

    println!(
        "\n== scenario '{}' (clients {truth_set:?} noisy) ==",
        scenario.name
    );
    println!(
        "{:>10}  {:>7}  {:>7}  {:>24}",
        "metric", "auc", "prec@k", "flagged (Jaccard)"
    );
    for (name, values) in [("FedSV", &fed2), ("ComFedSV", &com2)] {
        let auc = detection_auc(values, &bad).expect("scenario has bad and good clients");
        let p = precision_at_k(values, &bad, k).expect("k in range");
        let flagged = bottom_k_indices(values, k);
        let j = jaccard_index(&flagged, &truth_set);
        println!("{name:>10}  {auc:>7.3}  {p:>7.3}  {flagged:?} ({j:.3})");
    }
}
