//! Fairness audit: do identical clients receive identical value?
//!
//! ```sh
//! cargo run --release --example fairness_audit
//! ```
//!
//! Reproduces the paper's headline unfairness scenario (Example 1 / Fig. 5)
//! on a single run: clients 0 and 9 hold byte-identical data, yet FedSV
//! pays them differently whenever random selection treats them
//! asymmetrically. ComFedSV repairs the gap by completing the utility
//! matrix. The example repeats the experiment over several seeds and
//! reports the relative difference d_{0,9} for both metrics.

use comfedsv::metrics::relative_difference;
use comfedsv::prelude::*;

fn main() {
    let trials = 12;
    println!(
        "{:>6}  {:>14}  {:>14}   (d = |s0 - s9| / max(s0, s9); 0 is perfectly fair)",
        "trial", "FedSV d_0,9", "ComFedSV d_0,9"
    );
    let mut fed_ds = Vec::new();
    let mut com_ds = Vec::new();
    for trial in 0..trials {
        let seed = 100 + trial;
        let world = ExperimentBuilder::sim_mnist(true)
            .num_clients(10)
            .samples_per_client(50)
            .test_samples(120)
            .duplicate(0, 9) // client 9 gets an exact copy of client 0's data
            .seed(seed)
            .build();
        let trace = world.train(&FlConfig::new(10, 3, 0.2, seed));
        let oracle = world.oracle(&trace);

        let fed = FedSv::exact().run(&oracle).expect("small cohorts");
        let com = ComFedSv::exact(6)
            .with_lambda(0.01)
            .run(&oracle)
            .expect("10 clients is exact-safe")
            .values;
        let d_fed = relative_difference(fed[0], fed[9]);
        let d_com = relative_difference(com[0], com[9]);
        println!("{trial:>6}  {d_fed:>14.4}  {d_com:>14.4}");
        fed_ds.push(d_fed);
        com_ds.push(d_com);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean d_0,9: FedSV {:.4}, ComFedSV {:.4}",
        mean(&fed_ds),
        mean(&com_ds)
    );
    println!("ComFedSV should be substantially closer to 0 (fair) on average.");
}
