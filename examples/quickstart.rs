//! Quickstart: train a federated model and value every client.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 10-client heterogeneous synthetic task, trains FedAvg with
//! partial participation, and sweeps the full valuation-method matrix —
//! FedSV (the baseline), ComFedSV (this paper), TMC, group testing, and
//! the exact ground truth — through one [`ValuationSession`], printing
//! each method's values, cost, and ε-fairness against the ground truth.

use comfedsv::prelude::*;

fn main() {
    // A federated world: 10 clients with non-IID synthetic data and an
    // L2-regularized logistic-regression model.
    let world = ExperimentBuilder::synthetic(true)
        .num_clients(10)
        .samples_per_client(60)
        .test_samples(150)
        .seed(7)
        .build();

    // FedAvg: 10 rounds, 3 of 10 clients per round (round 0 selects all —
    // the paper's "everyone being heard" assumption).
    let fl = FlConfig::new(10, 3, 0.2, 7);
    let trace = world.train(&fl);
    println!(
        "trained {} rounds; final test accuracy {:.3}",
        trace.num_rounds(),
        world.test_accuracy(&trace.final_params)
    );

    // Compute the ground truth once, then hand it to the session so every
    // report carries an ε-fairness comparison.
    let oracle = world.oracle(&trace);
    let truth = ExactShapley.run(&oracle).expect("10 clients is exact-safe");
    let mut session = ValuationSession::builder()
        .rank(6)
        .lambda(0.01)
        .seed(7)
        .ground_truth(truth.clone())
        .build();

    println!(
        "\n{:>14}  {:>12}  {:>12}  {:>10}  {:>10}",
        "method", "client 0", "client 9", "cells", "rho vs gt"
    );
    for name in session.method_names() {
        // Fresh oracle per method so the cells column reports each
        // method's true evaluation cost (the oracle caches utilities,
        // and a shared one would show 0 for everything after the
        // ground-truth pass above).
        let oracle = world.oracle(&trace);
        match session.run(&name, &oracle) {
            Ok(report) => {
                let fairness = report.diagnostics.fairness.as_ref();
                println!(
                    "{:>14}  {:>12.5}  {:>12.5}  {:>10}  {:>10.3}",
                    report.method,
                    report.values[0],
                    report.values[9],
                    report.diagnostics.cells_evaluated,
                    fairness.and_then(|f| f.spearman_rho).unwrap_or(f64::NAN)
                );
            }
            Err(e) => println!("{name:>14}  failed: {e}"),
        }
    }

    println!("\nground truth per client:");
    for (i, v) in truth.iter().enumerate() {
        println!("{i:>7}  {v:>12.5}");
    }
}
