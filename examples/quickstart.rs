//! Quickstart: train a federated model and value every client.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 10-client heterogeneous synthetic task, trains FedAvg with
//! partial participation, and prints three valuations side by side:
//! FedSV (the baseline), ComFedSV (this paper), and the ground truth
//! computed from the full utility matrix.

use comfedsv::prelude::*;

fn main() {
    // A federated world: 10 clients with non-IID synthetic data and an
    // L2-regularized logistic-regression model.
    let world = ExperimentBuilder::synthetic(true)
        .num_clients(10)
        .samples_per_client(60)
        .test_samples(150)
        .seed(7)
        .build();

    // FedAvg: 10 rounds, 3 of 10 clients per round (round 0 selects all —
    // the paper's "everyone being heard" assumption).
    let fl = FlConfig::new(10, 3, 0.2, 7);
    let trace = world.train(&fl);
    println!(
        "trained {} rounds; final test accuracy {:.3}",
        trace.num_rounds(),
        world.test_accuracy(&trace.final_params)
    );

    // Value the clients.
    let oracle = world.oracle(&trace);
    let fed = fedsv(&oracle);
    let com = comfedsv_pipeline(&oracle, &ComFedSvConfig::exact(6).with_lambda(0.01)).values;
    let truth = ground_truth_valuation(&oracle);

    println!(
        "\n{:>7}  {:>12}  {:>12}  {:>12}",
        "client", "FedSV", "ComFedSV", "ground truth"
    );
    for i in 0..world.num_clients() {
        println!(
            "{:>7}  {:>12.5}  {:>12.5}  {:>12.5}",
            i, fed[i], com[i], truth[i]
        );
    }

    let rho_fed = comfedsv::metrics::spearman_rho(&fed, &truth).unwrap_or(f64::NAN);
    let rho_com = comfedsv::metrics::spearman_rho(&com, &truth).unwrap_or(f64::NAN);
    println!("\nrank correlation with ground truth: FedSV {rho_fed:.3}, ComFedSV {rho_com:.3}");
}
