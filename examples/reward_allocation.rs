//! Reward allocation: turning valuations into payouts at scale.
//!
//! ```sh
//! cargo run --release --example reward_allocation
//! ```
//!
//! The motivating application of the paper's introduction: a data
//! consortium rewards members in proportion to their contribution. This
//! example runs the *scalable* Monte-Carlo pipeline (Algorithm 1) on 40
//! clients — a regime where exact enumeration (2^40 coalitions) is
//! impossible — and allocates a reward pool proportionally to the
//! (non-negative part of the) ComFedSV scores.

use comfedsv::prelude::*;

fn main() {
    let n = 40usize;
    let pool_dollars = 100_000.0;

    let world = ExperimentBuilder::synthetic(true)
        .num_clients(n)
        .samples_per_client(40)
        .test_samples(150)
        .seed(11)
        .build();

    // 30% participation per round.
    let trace = world.train(&FlConfig::new(12, 12, 0.2, 11));
    println!(
        "final test accuracy: {:.3}",
        world.test_accuracy(&trace.final_params)
    );

    let oracle = world.oracle(&trace);
    let out = ComFedSv {
        rank: 6,
        lambda: 0.01,
        estimator: EstimatorKind::MonteCarlo {
            num_permutations: 150,
        },
        als_max_iters: 50,
        solver: Default::default(),
        seed: 11,
    }
    .run(&oracle)
    .expect("Monte-Carlo pipeline scales to 40 clients");
    println!(
        "completion: {} observed entries over {} prefix columns, ALS objective {:.4} -> {:.4}",
        out.problem.num_observations(),
        out.problem.num_cols(),
        out.objective_trace.first().unwrap(),
        out.objective_trace.last().unwrap()
    );

    // Proportional payout on the positive part (clients that hurt the
    // model receive nothing rather than a negative bill).
    let clipped: Vec<f64> = out.values.iter().map(|&v| v.max(0.0)).collect();
    let total: f64 = clipped.iter().sum();
    println!(
        "\n{:>7}  {:>12}  {:>12}",
        "client", "ComFedSV", "payout ($)"
    );
    let mut paid = 0.0;
    for (i, (&v, &c)) in out.values.iter().zip(&clipped).enumerate() {
        let payout = if total > 0.0 {
            pool_dollars * c / total
        } else {
            0.0
        };
        paid += payout;
        if i < 10 || v <= 0.0 {
            println!("{i:>7}  {v:>12.5}  {payout:>12.2}");
        }
    }
    println!("   ... ({} clients total, ${paid:.2} allocated)", n);
}
