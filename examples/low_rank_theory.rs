//! The theory behind ComFedSV, demonstrated end-to-end.
//!
//! ```sh
//! cargo run --release --example low_rank_theory
//! ```
//!
//! Walks the paper's theoretical chain on a live training run:
//!
//! 1. train a strongly convex task (L2 logistic regression) with the
//!    Proposition-2 learning-rate schedule;
//! 2. build the full utility matrix and show its singular values collapse
//!    (Example 2);
//! 3. compare the measured ε-rank against the Proposition-1 bound;
//! 4. complete the partially observed matrix and measure
//!    `δ = ‖U − WHᵀ‖₁`;
//! 5. verify Theorem 1: duplicated clients' ComFedSV gap ≤ `4δ/N`.

use comfedsv::prelude::*;
use comfedsv::shapley::fairness::{completion_delta, theorem1_tolerance};
use comfedsv::shapley::theory::{empirical_lipschitz, path_length, prop1_rank_bound};
use fedval_fl::full_utility_matrix;
use fedval_linalg::{eps_rank_upper_bound, singular_values};

fn main() {
    // 1. Strongly convex world with a duplicated client pair (0 and 7).
    let mu = 0.1;
    let world = ExperimentBuilder::synthetic(true)
        .num_clients(8)
        .samples_per_client(60)
        .test_samples(150)
        .regularization(mu)
        .duplicate(0, 7)
        .seed(4)
        .build();
    let lr = LearningRate::proposition2(mu, 4.0);
    let fl = FlConfig::new(15, 3, 0.0, 4).with_learning_rate(lr);
    let trace = world.train(&fl);
    println!(
        "trained {} rounds with the Proposition-2 schedule (eta_0 = {:.4}, eta_T = {:.4})",
        trace.num_rounds(),
        trace.rounds[0].eta,
        trace.rounds.last().unwrap().eta
    );

    // 2. The utility matrix and its spectrum.
    let oracle = world.oracle(&trace);
    let u = full_utility_matrix(&oracle);
    let sv = singular_values(&u).expect("finite utility matrix");
    println!(
        "\nutility matrix {}x{}; leading singular values:",
        u.rows(),
        u.cols()
    );
    for (i, s) in sv.iter().take(8).enumerate() {
        println!("  sigma_{} = {:.6}", i + 1, s);
    }

    // 3. ε-rank vs the Proposition-1 bound.
    let losses: Vec<f64> = (0..trace.num_rounds())
        .map(|t| oracle.base_loss(t))
        .collect();
    let l1 = empirical_lipschitz(&trace, &losses).max(1e-3) * 4.0;
    let eps = 0.05 * u.max_abs();
    let bound = prop1_rank_bound(
        l1,
        4.0,
        trace.rounds[0].eta,
        trace.rounds.last().unwrap().eta,
        path_length(&trace),
        eps,
    );
    let measured = eps_rank_upper_bound(&u, eps).unwrap();
    println!("\neps-rank at eps = 5% of max entry: measured {measured}, Prop-1 bound {bound}");

    // 4. Complete the observed entries and measure δ.
    let out = ComFedSv::exact(6)
        .with_lambda(1e-3)
        .run(&oracle)
        .expect("8 clients is exact-safe");
    let delta = completion_delta(&u, &out.factors, &out.problem);
    println!("completion delta = ||U - WH'||_1 = {delta:.6}");

    // 5. Theorem 1 in action.
    let tol = theorem1_tolerance(delta, world.num_clients());
    let gap = (out.values[0] - out.values[7]).abs();
    println!("\nduplicated clients 0 and 7:");
    println!("  ComFedSV gap |s_0 - s_7| = {gap:.6}");
    println!("  Theorem-1 tolerance 4*delta/N = {tol:.6}");
    println!("  guarantee holds: {}", gap <= tol);

    let fed = FedSv::exact().run(&oracle).expect("small cohorts");
    println!(
        "  (FedSV gap on the same run: {:.6})",
        (fed[0] - fed[7]).abs()
    );
}
