//! Free-rider detection: valuation should expose clients that contribute
//! nothing to training.
//!
//! ```sh
//! cargo run --release --example free_rider_detection
//! ```
//!
//! A free rider stays in the federation (and would share in any reward
//! allocation) but returns the broadcast model unchanged every round.
//! This example builds the robustness catalog's `free_riders` scenario —
//! two free riders among eight clients — trains FedAvg with the
//! behaviors applied, and shows that every Shapley-style valuation
//! drives the free riders' values to the bottom of the ranking: their
//! marginal contribution to any coalition is (approximately) zero. The
//! `mixed` scenario then shows detection holding up when a noisy-label
//! client and a straggler misbehave alongside the free rider.

use comfedsv::metrics::{bottom_k_indices, detection_auc, precision_at_k};
use comfedsv::prelude::*;

fn report(scenario: &Scenario, seed: u64) {
    let world = scenario.build(seed);
    let trace = world.train(&scenario.fl_config(seed));
    let oracle = world.oracle(&trace);
    let bad = scenario.bad_clients();
    let truth_set: Vec<usize> = bad
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i))
        .collect();
    let k = scenario.num_bad();

    println!(
        "== scenario '{}' ({} clients, bad: {truth_set:?}) ==",
        scenario.name, scenario.num_clients
    );
    let fed = FedSv::exact().run(&oracle).expect("small cohorts");
    let com = ComFedSv::exact(4)
        .with_lambda(0.01)
        .run(&oracle)
        .expect("8 clients is exact-safe")
        .values;
    let gt = ExactShapley.run(&oracle).expect("8 clients is exact-safe");
    println!(
        "{:>12}  {:>7}  {:>7}  {:>12}",
        "metric", "auc", "prec@k", "flagged"
    );
    for (name, values) in [("groundtruth", &gt), ("FedSV", &fed), ("ComFedSV", &com)] {
        let auc = detection_auc(values, &bad).expect("scenario has bad and good clients");
        let p = precision_at_k(values, &bad, k).expect("k in range");
        let flagged = bottom_k_indices(values, k);
        println!("{name:>12}  {auc:>7.3}  {p:>7.3}  {flagged:?}");
    }
    println!();
}

fn main() {
    report(&Scenario::free_riders(), 17);
    report(&Scenario::mixed(), 17);
}
