//! Configured dataset/model pairings matching the paper's evaluation.
//!
//! The paper evaluates four tasks: synthetic data with logistic regression,
//! MNIST with a fully connected network, Fashion-MNIST with a small CNN,
//! and CIFAR10 with a larger CNN. This module packages each pairing (with
//! the simulated image stand-ins described in `DESIGN.md`) behind one
//! builder so that examples, tests, and the per-figure benchmark harnesses
//! construct identical worlds.

use fedval_data::images::SimImageSource;
use fedval_data::{
    add_feature_noise, apply_label_corruption, duplicate_client, partition_dirichlet,
    partition_iid, partition_shards, Dataset, LabelCorruption, SimImageConfig, SyntheticConfig,
    SyntheticFederated,
};
use fedval_fl::{
    train_federated, try_train_federated, ClientBehavior, FlConfig, TrainingTrace, UtilityOracle,
};
use fedval_models::{Activation, Cnn, CnnConfig, LogisticRegression, Mlp, Model};
use fedval_runtime::{CancelToken, Cancelled};
use fedval_shapley::{ValuationError, ValuationReport, ValuationSession};

/// Sweeps valuation methods over a recorded run through one
/// [`ValuationSession`] — the cross-method harness the examples and the
/// per-figure benchmark bins share. With an empty `names` slice every
/// registered method runs (in registry order); otherwise only the named
/// ones, in the given order. Methods that reject the oracle (e.g.
/// "exact" beyond the enumeration gate) report their typed error instead
/// of aborting the sweep.
///
/// Because the sweep exists to *compare* methods (the paper's Fig.-8
/// running-time axis is `cells_evaluated`), it forces the session into
/// isolated-runs mode: every method gets a fresh oracle cache, so each
/// report's `cells_evaluated` is that method's full standalone cost
/// rather than "whatever the earlier methods had not already evaluated".
/// The previous mode is restored before returning; drive the session
/// directly if you want shared-cache accounting.
pub fn sweep_methods(
    session: &mut ValuationSession,
    oracle: &UtilityOracle<'_>,
    names: &[&str],
) -> Vec<(String, Result<ValuationReport, ValuationError>)> {
    let previous = session.isolated_runs();
    session.set_isolated_runs(true);
    let results = if names.is_empty() {
        session.run_all(oracle)
    } else {
        names
            .iter()
            .map(|&n| (n.to_string(), session.run(n, oracle)))
            .collect()
    };
    session.set_isolated_runs(previous);
    results
}

/// Which of the paper's four tasks to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// FedProx-style synthetic data + logistic regression.
    Synthetic {
        /// `α = β = 1` (non-IID) when `true`, else `α = β = 0`.
        non_iid: bool,
    },
    /// Simulated MNIST + fully connected network.
    SimMnist {
        /// Label-shard partitioning (two classes per client) when `true`.
        non_iid: bool,
    },
    /// Simulated Fashion-MNIST + small CNN.
    SimFashion {
        /// Label-shard partitioning when `true`.
        non_iid: bool,
    },
    /// Simulated CIFAR10 + larger CNN.
    SimCifar {
        /// Label-shard partitioning when `true`.
        non_iid: bool,
    },
}

impl DatasetKind {
    /// Short name used in harness output ("synthetic", "mnist", …).
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Synthetic { .. } => "synthetic",
            DatasetKind::SimMnist { .. } => "mnist",
            DatasetKind::SimFashion { .. } => "fmnist",
            DatasetKind::SimCifar { .. } => "cifar10",
        }
    }

    /// The paper's four-dataset suite in its usual order.
    pub fn suite(non_iid: bool) -> [DatasetKind; 4] {
        [
            DatasetKind::Synthetic { non_iid },
            DatasetKind::SimMnist { non_iid },
            DatasetKind::SimFashion { non_iid },
            DatasetKind::SimCifar { non_iid },
        ]
    }
}

/// Builder for a federated [`World`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    kind: DatasetKind,
    num_clients: usize,
    samples_per_client: usize,
    test_samples: usize,
    seed: u64,
    regularization: f64,
    duplicate_pair: Option<(usize, usize)>,
    /// Per-client feature-noise fractions (index = client id).
    feature_noise: Vec<f64>,
    /// Clients receiving label flips, with the flip fraction.
    label_noise: Vec<(usize, f64)>,
    /// Dirichlet label-skew concentration for the pooled image kinds.
    dirichlet_alpha: Option<f64>,
    /// Per-client protocol behaviors for the robustness scenarios.
    behaviors: Vec<ClientBehavior>,
}

impl ExperimentBuilder {
    /// Starts a builder for the given task.
    pub fn new(kind: DatasetKind) -> Self {
        ExperimentBuilder {
            kind,
            num_clients: 10,
            samples_per_client: 80,
            test_samples: 200,
            seed: 0,
            regularization: 1e-3,
            duplicate_pair: None,
            feature_noise: Vec::new(),
            label_noise: Vec::new(),
            dirichlet_alpha: None,
            behaviors: Vec::new(),
        }
    }

    /// Synthetic-data shorthand.
    pub fn synthetic(non_iid: bool) -> Self {
        Self::new(DatasetKind::Synthetic { non_iid })
    }

    /// Simulated-MNIST shorthand.
    pub fn sim_mnist(non_iid: bool) -> Self {
        Self::new(DatasetKind::SimMnist { non_iid })
    }

    /// Number of clients `N`.
    pub fn num_clients(mut self, n: usize) -> Self {
        self.num_clients = n;
        self
    }

    /// Training examples per client.
    pub fn samples_per_client(mut self, n: usize) -> Self {
        self.samples_per_client = n;
        self
    }

    /// Server-side test examples.
    pub fn test_samples(mut self, n: usize) -> Self {
        self.test_samples = n;
        self
    }

    /// RNG seed for data generation and partitioning.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// L2 regularization of the model (strong-convexity modulus for
    /// logistic regression).
    pub fn regularization(mut self, reg: f64) -> Self {
        self.regularization = reg;
        self
    }

    /// Gives client `dst` an exact copy of client `src`'s data (the
    /// paper's fairness construction: clients 0 and 9).
    pub fn duplicate(mut self, src: usize, dst: usize) -> Self {
        self.duplicate_pair = Some((src, dst));
        self
    }

    /// Adds Gaussian feature noise to a fraction of each client's data
    /// (`fractions[i]` for client `i`) — the Fig. 6 construction.
    pub fn feature_noise(mut self, fractions: Vec<f64>) -> Self {
        self.feature_noise = fractions;
        self
    }

    /// Flips a fraction of labels for the given clients — the Fig. 7
    /// construction.
    pub fn label_noise(mut self, clients: Vec<(usize, f64)>) -> Self {
        self.label_noise = clients;
        self
    }

    /// Partitions the pooled image datasets with Dirichlet(α) label skew
    /// instead of IID/sharding (Hsu et al.; see
    /// [`DirichletSkew`](fedval_data::DirichletSkew) for named presets).
    /// The synthetic task generates per-client data directly — its
    /// heterogeneity knob is `non_iid` — so the setting is ignored there.
    pub fn dirichlet(mut self, alpha: f64) -> Self {
        self.dirichlet_alpha = Some(alpha);
        self
    }

    /// Assigns per-client protocol behaviors (`behaviors[i]` for client
    /// `i`; missing tail = honest). [`ClientBehavior::NoisyLabels`] is a
    /// *data*-level behavior and is applied here, at world build; the
    /// protocol-level behaviors travel with the world into
    /// [`World::train`] and its [`FlConfig`].
    pub fn behaviors(mut self, behaviors: Vec<ClientBehavior>) -> Self {
        self.behaviors = behaviors;
        self
    }

    /// Materializes the world.
    pub fn build(self) -> World {
        let (mut clients, test) = self.build_datasets();
        if let Some((src, dst)) = self.duplicate_pair {
            duplicate_client(&mut clients, src, dst);
        }
        for (i, &frac) in self.feature_noise.iter().enumerate() {
            if i < clients.len() && frac > 0.0 {
                // The paper adds Gaussian noise with the data's own scale.
                add_feature_noise(&mut clients[i], frac, 1.0, self.seed ^ (0xA5A5 + i as u64));
            }
        }
        // Legacy label_noise keeps its historical seeding (bit-identical
        // pre-existing worlds); behavior-driven corruption uses a distinct
        // seed so stacking both on one client never cancels out.
        let legacy: Vec<LabelCorruption> = self
            .label_noise
            .iter()
            .map(|&(client, fraction)| LabelCorruption { client, fraction })
            .collect();
        apply_label_corruption(&mut clients, &legacy, self.seed);
        let behavioral: Vec<LabelCorruption> = self
            .behaviors
            .iter()
            .enumerate()
            .map(|(client, b)| LabelCorruption {
                client,
                fraction: b.label_noise_fraction(),
            })
            .filter(|spec| spec.fraction > 0.0)
            .collect();
        apply_label_corruption(&mut clients, &behavioral, self.seed ^ 0xBAD);
        let prototype = self.build_model(&test);
        World {
            clients,
            test,
            prototype,
            kind: self.kind,
            behaviors: self.behaviors,
        }
    }

    fn build_datasets(&self) -> (Vec<Dataset>, Dataset) {
        match self.kind {
            DatasetKind::Synthetic { non_iid } => {
                let base = if non_iid {
                    SyntheticConfig::non_iid()
                } else {
                    SyntheticConfig::iid()
                };
                let cfg = SyntheticConfig {
                    num_clients: self.num_clients,
                    samples_per_client: self.samples_per_client,
                    test_samples: self.test_samples,
                    seed: self.seed,
                    ..base
                };
                let fed = SyntheticFederated::generate(&cfg);
                (fed.client_data, fed.test_data)
            }
            DatasetKind::SimMnist { non_iid }
            | DatasetKind::SimFashion { non_iid }
            | DatasetKind::SimCifar { non_iid } => {
                let img_cfg = match self.kind {
                    DatasetKind::SimMnist { .. } => SimImageConfig::mnist(),
                    DatasetKind::SimFashion { .. } => SimImageConfig::fashion_mnist(),
                    _ => SimImageConfig::cifar10(),
                };
                let source = SimImageSource::new(img_cfg);
                let total = self.num_clients * self.samples_per_client;
                let pool = source.sample(total, self.seed);
                let clients = if let Some(alpha) = self.dirichlet_alpha {
                    partition_dirichlet(&pool, self.num_clients, alpha, self.seed ^ 0x1234)
                } else if non_iid {
                    partition_shards(&pool, self.num_clients, self.seed ^ 0x1234)
                } else {
                    partition_iid(&pool, self.num_clients, self.seed ^ 0x1234)
                };
                let test = source.sample(self.test_samples, self.seed ^ 0x9999);
                (clients, test)
            }
        }
    }

    fn build_model(&self, test: &Dataset) -> Box<dyn Model> {
        let dim = test.dim();
        let classes = test.num_classes();
        match self.kind {
            DatasetKind::Synthetic { .. } => Box::new(LogisticRegression::new(
                dim,
                classes,
                self.regularization,
                self.seed ^ 0x40de1,
            )),
            DatasetKind::SimMnist { .. } => Box::new(Mlp::new(
                &[dim, 32, classes],
                Activation::Relu,
                self.regularization,
                self.seed ^ 0x40de1,
            )),
            DatasetKind::SimFashion { .. } => {
                // 64 = 8×8 images, small CNN.
                Box::new(Cnn::new(
                    CnnConfig {
                        height: 8,
                        width: 8,
                        filters: 6,
                        num_classes: classes,
                        reg: self.regularization,
                    },
                    self.seed ^ 0x40de1,
                ))
            }
            DatasetKind::SimCifar { .. } => {
                // 144 = 12×12 images, larger CNN (the paper's VGG role).
                Box::new(Cnn::new(
                    CnnConfig {
                        height: 12,
                        width: 12,
                        filters: 10,
                        num_classes: classes,
                        reg: self.regularization,
                    },
                    self.seed ^ 0x40de1,
                ))
            }
        }
    }
}

/// A materialized federated task: client datasets, the server-held test
/// set, the model prototype, and (for robustness scenarios) the
/// per-client behaviors baked into the world.
pub struct World {
    /// Per-client local datasets.
    pub clients: Vec<Dataset>,
    /// Server-held test set defining the utility function.
    pub test: Dataset,
    /// Model prototype (architecture + initial parameters).
    pub prototype: Box<dyn Model>,
    /// Which task this world is.
    pub kind: DatasetKind,
    /// Per-client protocol behaviors (empty = everyone honest).
    pub behaviors: Vec<ClientBehavior>,
}

impl World {
    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Ground-truth "is this client bad?" labels, one per client, derived
    /// from the behaviors the world was built with (see
    /// [`ClientBehavior::is_bad`]). All `false` for behavior-free worlds.
    pub fn bad_clients(&self) -> Vec<bool> {
        (0..self.num_clients())
            .map(|i| self.behaviors.get(i).copied().unwrap_or_default().is_bad())
            .collect()
    }

    /// Runs FedAvg and records the trace. When the world carries
    /// behaviors and `config` does not set any of its own, the world's
    /// behaviors are applied — so scenario worlds misbehave without the
    /// caller re-plumbing them. Behavior-free worlds pass `config`
    /// through untouched (the exact legacy path).
    pub fn train(&self, config: &FlConfig) -> TrainingTrace {
        if config.behaviors.is_empty() && !self.behaviors.is_empty() {
            let merged = config.clone().with_behaviors(self.behaviors.clone());
            return train_federated(self.prototype.as_ref(), &self.clients, &merged);
        }
        train_federated(self.prototype.as_ref(), &self.clients, config)
    }

    /// [`Self::train`] with cooperative cancellation: `cancel` is
    /// checked at every round boundary, so a service job whose client
    /// disconnects mid-training stops within one round instead of
    /// training to completion first. A fresh token never fires, making
    /// this a drop-in superset of [`Self::train`].
    pub fn try_train(
        &self,
        config: &FlConfig,
        cancel: &CancelToken,
    ) -> Result<TrainingTrace, Cancelled> {
        if config.behaviors.is_empty() && !self.behaviors.is_empty() {
            let merged = config.clone().with_behaviors(self.behaviors.clone());
            return try_train_federated(self.prototype.as_ref(), &self.clients, &merged, cancel);
        }
        try_train_federated(self.prototype.as_ref(), &self.clients, config, cancel)
    }

    /// Builds a utility oracle over a recorded trace.
    pub fn oracle<'a>(&'a self, trace: &'a TrainingTrace) -> UtilityOracle<'a> {
        UtilityOracle::new(trace, self.prototype.as_ref(), &self.test)
    }

    /// Accuracy of a parameter vector on the test set (harness helper).
    pub fn test_accuracy(&self, params: &[f64]) -> f64 {
        let mut m = self.prototype.clone_model();
        m.set_params(params);
        m.accuracy(&self.test)
    }
}

/// One adversarial-client world recipe from the robustness catalog: a
/// dataset layout plus per-client behaviors with ground-truth bad-client
/// labels. Scenarios are what the robustness harness
/// (`fedval_bench`'s `robustness` bin), the detection examples, and the
/// tier-1 ranking tests all build from, so they agree on what
/// "free riders" or "noisy labels" means.
///
/// Sizes are deliberately small (8 clients, synthetic/logistic for the
/// behavioral scenarios) so a full method × scenario sweep stays
/// CI-friendly; `dirichlet_skew` uses the pooled simulated-MNIST task
/// because Dirichlet label skew needs a pooled multi-class dataset.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Catalog name ("free_riders", "noisy_labels", …).
    pub name: &'static str,
    /// Dataset/model pairing the world is built on.
    pub kind: DatasetKind,
    /// Dirichlet concentration, for the skew scenarios.
    pub dirichlet_alpha: Option<f64>,
    /// Number of clients.
    pub num_clients: usize,
    /// Training examples per client.
    pub samples_per_client: usize,
    /// Server-side test examples.
    pub test_samples: usize,
    /// FedAvg rounds.
    pub rounds: usize,
    /// Clients selected per round.
    pub clients_per_round: usize,
    /// FedAvg learning rate.
    pub learning_rate: f64,
    /// Per-client behaviors (`behaviors[i]` for client `i`).
    pub behaviors: Vec<ClientBehavior>,
}

impl Scenario {
    fn base(name: &'static str, behaviors: Vec<ClientBehavior>) -> Self {
        Scenario {
            name,
            kind: DatasetKind::Synthetic { non_iid: true },
            dirichlet_alpha: None,
            num_clients: 8,
            samples_per_client: 40,
            test_samples: 160,
            rounds: 8,
            clients_per_round: 5,
            learning_rate: 0.2,
            behaviors,
        }
    }

    /// Everyone honest, IID synthetic data — the control world.
    pub fn iid_baseline() -> Self {
        let mut s = Self::base("iid_baseline", Vec::new());
        s.kind = DatasetKind::Synthetic { non_iid: false };
        s
    }

    /// Everyone honest, Dirichlet(α) label skew over pooled simulated
    /// MNIST. Low α is *heterogeneity*, not misbehavior: there are no
    /// bad clients here, and the harness reports how skew alone moves
    /// valuations.
    pub fn dirichlet_skew(alpha: f64) -> Self {
        let mut s = Self::base("dirichlet_skew", Vec::new());
        s.kind = DatasetKind::SimMnist { non_iid: false };
        s.dirichlet_alpha = Some(alpha);
        s
    }

    /// Three clients with a large fraction of flipped labels (the
    /// paper's Fig.-7-style corruption, driven through
    /// [`ClientBehavior::NoisyLabels`]). Built on *IID* synthetic data:
    /// with heterogeneous local distributions, label corruption is
    /// confounded with benign skew (even exact Shapley separates poorly),
    /// whereas on IID data a low value cleanly indicts the labels.
    pub fn noisy_labels() -> Self {
        let mut behaviors = vec![ClientBehavior::Honest; 8];
        behaviors[1] = ClientBehavior::NoisyLabels(0.8);
        behaviors[4] = ClientBehavior::NoisyLabels(0.8);
        behaviors[6] = ClientBehavior::NoisyLabels(0.8);
        let mut s = Self::base("noisy_labels", behaviors);
        s.kind = DatasetKind::Synthetic { non_iid: false };
        s
    }

    /// Two clients contribute nothing: they return the broadcast model
    /// unchanged every round.
    pub fn free_riders() -> Self {
        let mut behaviors = vec![ClientBehavior::Honest; 8];
        behaviors[2] = ClientBehavior::FreeRider;
        behaviors[5] = ClientBehavior::FreeRider;
        Self::base("free_riders", behaviors)
    }

    /// Two clients only manage to train in ~25% of their selected
    /// rounds (deterministic per-round coin).
    pub fn stragglers() -> Self {
        let mut behaviors = vec![ClientBehavior::Honest; 8];
        behaviors[2] = ClientBehavior::Straggler(0.25);
        behaviors[5] = ClientBehavior::Straggler(0.25);
        Self::base("stragglers", behaviors)
    }

    /// Two clients are only present for part of training: one leaves
    /// after the first quarter, one joins for the final quarter.
    pub fn churn() -> Self {
        let mut behaviors = vec![ClientBehavior::Honest; 8];
        behaviors[2] = ClientBehavior::Churn {
            join_round: 0,
            leave_round: 2,
        };
        behaviors[5] = ClientBehavior::Churn {
            join_round: 6,
            leave_round: 8,
        };
        Self::base("churn", behaviors)
    }

    /// One of each adversary class in a single world.
    pub fn mixed() -> Self {
        let mut behaviors = vec![ClientBehavior::Honest; 8];
        behaviors[1] = ClientBehavior::FreeRider;
        behaviors[3] = ClientBehavior::NoisyLabels(0.7);
        behaviors[6] = ClientBehavior::Straggler(0.25);
        Self::base("mixed", behaviors)
    }

    /// The full catalog, in harness order.
    pub fn catalog() -> Vec<Scenario> {
        vec![
            Scenario::iid_baseline(),
            Scenario::dirichlet_skew(0.1),
            Scenario::noisy_labels(),
            Scenario::free_riders(),
            Scenario::stragglers(),
            Scenario::churn(),
            Scenario::mixed(),
        ]
    }

    /// Looks a scenario up by its catalog name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::catalog().into_iter().find(|s| s.name == name)
    }

    /// Materializes the scenario's world for a seed. The returned world
    /// carries the behaviors, so `world.train(&scenario.fl_config(seed))`
    /// — or any behavior-free config — misbehaves as specified.
    pub fn build(&self, seed: u64) -> World {
        let mut builder = ExperimentBuilder::new(self.kind)
            .num_clients(self.num_clients)
            .samples_per_client(self.samples_per_client)
            .test_samples(self.test_samples)
            .seed(seed)
            .behaviors(self.behaviors.clone());
        if let Some(alpha) = self.dirichlet_alpha {
            builder = builder.dirichlet(alpha);
        }
        builder.build()
    }

    /// The FedAvg configuration the harness trains this scenario with
    /// (behaviors included).
    pub fn fl_config(&self, seed: u64) -> FlConfig {
        FlConfig::new(
            self.rounds,
            self.clients_per_round,
            self.learning_rate,
            seed,
        )
        .with_behaviors(self.behaviors.clone())
    }

    /// Ground-truth bad-client labels, one per client.
    pub fn bad_clients(&self) -> Vec<bool> {
        (0..self.num_clients)
            .map(|i| self.behaviors.get(i).copied().unwrap_or_default().is_bad())
            .collect()
    }

    /// Number of injected bad clients.
    pub fn num_bad(&self) -> usize {
        self.bad_clients().iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_world_builds_with_requested_shape() {
        let w = ExperimentBuilder::synthetic(false)
            .num_clients(5)
            .samples_per_client(30)
            .test_samples(40)
            .seed(3)
            .build();
        assert_eq!(w.num_clients(), 5);
        assert_eq!(w.clients[0].len(), 30);
        assert_eq!(w.test.len(), 40);
        assert_eq!(w.kind.name(), "synthetic");
    }

    #[test]
    fn image_worlds_build_for_all_kinds() {
        for kind in DatasetKind::suite(true).into_iter().skip(1) {
            let w = ExperimentBuilder::new(kind)
                .num_clients(4)
                .samples_per_client(20)
                .test_samples(30)
                .build();
            assert_eq!(w.num_clients(), 4);
            assert!(w.test.dim() > 0);
            assert_eq!(w.prototype.params().len(), w.prototype.num_params());
        }
    }

    #[test]
    fn duplicate_builder_copies_data() {
        let w = ExperimentBuilder::sim_mnist(true)
            .num_clients(5)
            .samples_per_client(20)
            .duplicate(0, 4)
            .build();
        assert_eq!(
            w.clients[0].features().as_slice(),
            w.clients[4].features().as_slice()
        );
    }

    #[test]
    fn feature_noise_applies_per_client() {
        let clean = ExperimentBuilder::synthetic(false)
            .num_clients(3)
            .samples_per_client(20)
            .build();
        let noisy = ExperimentBuilder::synthetic(false)
            .num_clients(3)
            .samples_per_client(20)
            .feature_noise(vec![0.0, 0.0, 1.0])
            .build();
        assert_eq!(
            clean.clients[0].features().as_slice(),
            noisy.clients[0].features().as_slice()
        );
        assert_ne!(
            clean.clients[2].features().as_slice(),
            noisy.clients[2].features().as_slice()
        );
    }

    #[test]
    fn label_noise_applies_to_listed_clients() {
        let clean = ExperimentBuilder::sim_mnist(false)
            .num_clients(3)
            .samples_per_client(30)
            .build();
        let noisy = ExperimentBuilder::sim_mnist(false)
            .num_clients(3)
            .samples_per_client(30)
            .label_noise(vec![(1, 0.5)])
            .build();
        assert_eq!(clean.clients[0].labels(), noisy.clients[0].labels());
        assert_ne!(clean.clients[1].labels(), noisy.clients[1].labels());
    }

    #[test]
    fn train_and_oracle_roundtrip() {
        let w = ExperimentBuilder::synthetic(true)
            .num_clients(4)
            .samples_per_client(25)
            .seed(5)
            .build();
        let trace = w.train(&FlConfig::new(3, 2, 0.2, 5));
        assert_eq!(trace.num_rounds(), 3);
        let oracle = w.oracle(&trace);
        let u = oracle.utility(0, fedval_fl::Subset::full(4));
        assert!(u.is_finite());
        let acc = w.test_accuracy(&trace.final_params);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn sweep_methods_runs_named_and_all() {
        let w = ExperimentBuilder::synthetic(true)
            .num_clients(4)
            .samples_per_client(25)
            .seed(9)
            .build();
        let trace = w.train(&FlConfig::new(3, 2, 0.2, 9));
        let oracle = w.oracle(&trace);
        let mut session = fedval_shapley::ValuationSession::builder()
            .rank(3)
            .permutations(20)
            .seed(9)
            .build();
        let named = sweep_methods(&mut session, &oracle, &["fedsv", "comfedsv"]);
        assert_eq!(named.len(), 2);
        assert_eq!(named[0].0, "fedsv");
        assert!(named.iter().all(|(_, r)| r.is_ok()));
        let all = sweep_methods(&mut session, &oracle, &[]);
        assert_eq!(all.len(), session.method_names().len());
    }

    #[test]
    fn sweep_methods_reports_isolated_per_method_costs() {
        let w = ExperimentBuilder::synthetic(true)
            .num_clients(4)
            .samples_per_client(25)
            .seed(13)
            .build();
        let trace = w.train(&FlConfig::new(3, 2, 0.2, 13));
        let oracle = w.oracle(&trace);
        let mut session = fedval_shapley::ValuationSession::builder()
            .rank(3)
            .permutations(20)
            .seed(13)
            .build();
        // Sweep order must not affect the reported cost: "fedsv" costs
        // the same whether it runs after "exact" (whose grid covers all
        // of fedsv's cells) or alone.
        let after_exact = sweep_methods(&mut session, &oracle, &["exact", "fedsv"]);
        let alone = sweep_methods(&mut session, &oracle, &["fedsv"]);
        let cost = |r: &[(String, Result<ValuationReport, ValuationError>)], name: &str| {
            r.iter()
                .find(|(n, _)| n == name)
                .unwrap()
                .1
                .as_ref()
                .unwrap()
                .diagnostics
                .cells_evaluated
        };
        assert!(cost(&after_exact, "fedsv") > 0);
        assert_eq!(cost(&after_exact, "fedsv"), cost(&alone, "fedsv"));
        // And the sweep restored the session's shared-cache mode.
        assert!(!session.isolated_runs());
    }

    #[test]
    fn behavior_noisy_labels_corrupts_data_at_build() {
        let clean = ExperimentBuilder::synthetic(false)
            .num_clients(3)
            .samples_per_client(30)
            .seed(4)
            .build();
        let noisy = ExperimentBuilder::synthetic(false)
            .num_clients(3)
            .samples_per_client(30)
            .seed(4)
            .behaviors(vec![
                ClientBehavior::Honest,
                ClientBehavior::NoisyLabels(0.6),
                ClientBehavior::FreeRider,
            ])
            .build();
        assert_eq!(clean.clients[0].labels(), noisy.clients[0].labels());
        assert_ne!(clean.clients[1].labels(), noisy.clients[1].labels());
        // FreeRider is protocol-level: its data is untouched.
        assert_eq!(clean.clients[2].labels(), noisy.clients[2].labels());
        assert_eq!(noisy.bad_clients(), vec![false, true, true]);
    }

    #[test]
    fn behavior_and_legacy_label_noise_stack_without_cancelling() {
        // Same client, same fraction through both mechanisms: distinct
        // seeds mean the second pass must not exactly undo the first.
        let once = ExperimentBuilder::synthetic(false)
            .num_clients(2)
            .samples_per_client(40)
            .seed(4)
            .label_noise(vec![(1, 0.5)])
            .build();
        let both = ExperimentBuilder::synthetic(false)
            .num_clients(2)
            .samples_per_client(40)
            .seed(4)
            .label_noise(vec![(1, 0.5)])
            .behaviors(vec![
                ClientBehavior::Honest,
                ClientBehavior::NoisyLabels(0.5),
            ])
            .build();
        let clean = ExperimentBuilder::synthetic(false)
            .num_clients(2)
            .samples_per_client(40)
            .seed(4)
            .build();
        assert_ne!(once.clients[1].labels(), both.clients[1].labels());
        assert_ne!(clean.clients[1].labels(), both.clients[1].labels());
    }

    #[test]
    fn world_train_applies_world_behaviors_by_default() {
        let scenario = Scenario::free_riders();
        let world = scenario.build(3);
        // Behavior-free config: World::train merges the world's behaviors.
        let trace = world.train(&FlConfig::new(4, 8, 0.2, 3));
        let global0 = &trace.rounds[0].global_params;
        assert_eq!(&trace.rounds[0].local_params[2], global0);
        assert_ne!(&trace.rounds[0].local_params[0], global0);
    }

    #[test]
    fn dirichlet_builder_skews_image_partitions() {
        let skewed = ExperimentBuilder::sim_mnist(false)
            .num_clients(6)
            .samples_per_client(40)
            .seed(2)
            .dirichlet(0.05)
            .build();
        let iid = ExperimentBuilder::sim_mnist(false)
            .num_clients(6)
            .samples_per_client(40)
            .seed(2)
            .build();
        let max_class_frac = |w: &World| {
            w.clients
                .iter()
                .map(|c| *c.class_counts().iter().max().unwrap() as f64 / c.len() as f64)
                .fold(0.0_f64, f64::max)
        };
        assert!(max_class_frac(&skewed) > max_class_frac(&iid));
        for c in &skewed.clients {
            assert!(!c.is_empty());
        }
    }

    #[test]
    fn scenario_catalog_names_are_unique_and_buildable() {
        let catalog = Scenario::catalog();
        assert_eq!(catalog.len(), 7);
        let names: std::collections::HashSet<_> = catalog.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), catalog.len());
        for s in &catalog {
            let w = s.build(1);
            assert_eq!(w.num_clients(), s.num_clients);
            assert_eq!(w.bad_clients(), s.bad_clients());
            assert_eq!(s.num_bad(), s.bad_clients().iter().filter(|&&b| b).count());
            for c in &w.clients {
                assert!(!c.is_empty(), "{}: empty client dataset", s.name);
            }
        }
        assert!(Scenario::by_name("free_riders").is_some());
        assert!(Scenario::by_name("nonsense").is_none());
        assert_eq!(Scenario::free_riders().num_bad(), 2);
        assert_eq!(Scenario::iid_baseline().num_bad(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            ExperimentBuilder::sim_mnist(true)
                .num_clients(4)
                .samples_per_client(20)
                .seed(11)
                .build()
        };
        let a = build();
        let b = build();
        assert_eq!(
            a.clients[2].features().as_slice(),
            b.clients[2].features().as_slice()
        );
        assert_eq!(a.prototype.params(), b.prototype.params());
    }
}
