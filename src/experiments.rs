//! Configured dataset/model pairings matching the paper's evaluation.
//!
//! The paper evaluates four tasks: synthetic data with logistic regression,
//! MNIST with a fully connected network, Fashion-MNIST with a small CNN,
//! and CIFAR10 with a larger CNN. This module packages each pairing (with
//! the simulated image stand-ins described in `DESIGN.md`) behind one
//! builder so that examples, tests, and the per-figure benchmark harnesses
//! construct identical worlds.

use fedval_data::images::SimImageSource;
use fedval_data::{
    add_feature_noise, duplicate_client, flip_labels, partition_iid, partition_shards, Dataset,
    SimImageConfig, SyntheticConfig, SyntheticFederated,
};
use fedval_fl::{train_federated, FlConfig, TrainingTrace, UtilityOracle};
use fedval_models::{Activation, Cnn, CnnConfig, LogisticRegression, Mlp, Model};
use fedval_shapley::{ValuationError, ValuationReport, ValuationSession};

/// Sweeps valuation methods over a recorded run through one
/// [`ValuationSession`] — the cross-method harness the examples and the
/// per-figure benchmark bins share. With an empty `names` slice every
/// registered method runs (in registry order); otherwise only the named
/// ones, in the given order. Methods that reject the oracle (e.g.
/// "exact" beyond the enumeration gate) report their typed error instead
/// of aborting the sweep.
///
/// Because the sweep exists to *compare* methods (the paper's Fig.-8
/// running-time axis is `cells_evaluated`), it forces the session into
/// isolated-runs mode: every method gets a fresh oracle cache, so each
/// report's `cells_evaluated` is that method's full standalone cost
/// rather than "whatever the earlier methods had not already evaluated".
/// The previous mode is restored before returning; drive the session
/// directly if you want shared-cache accounting.
pub fn sweep_methods(
    session: &mut ValuationSession,
    oracle: &UtilityOracle<'_>,
    names: &[&str],
) -> Vec<(String, Result<ValuationReport, ValuationError>)> {
    let previous = session.isolated_runs();
    session.set_isolated_runs(true);
    let results = if names.is_empty() {
        session.run_all(oracle)
    } else {
        names
            .iter()
            .map(|&n| (n.to_string(), session.run(n, oracle)))
            .collect()
    };
    session.set_isolated_runs(previous);
    results
}

/// Which of the paper's four tasks to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// FedProx-style synthetic data + logistic regression.
    Synthetic {
        /// `α = β = 1` (non-IID) when `true`, else `α = β = 0`.
        non_iid: bool,
    },
    /// Simulated MNIST + fully connected network.
    SimMnist {
        /// Label-shard partitioning (two classes per client) when `true`.
        non_iid: bool,
    },
    /// Simulated Fashion-MNIST + small CNN.
    SimFashion {
        /// Label-shard partitioning when `true`.
        non_iid: bool,
    },
    /// Simulated CIFAR10 + larger CNN.
    SimCifar {
        /// Label-shard partitioning when `true`.
        non_iid: bool,
    },
}

impl DatasetKind {
    /// Short name used in harness output ("synthetic", "mnist", …).
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Synthetic { .. } => "synthetic",
            DatasetKind::SimMnist { .. } => "mnist",
            DatasetKind::SimFashion { .. } => "fmnist",
            DatasetKind::SimCifar { .. } => "cifar10",
        }
    }

    /// The paper's four-dataset suite in its usual order.
    pub fn suite(non_iid: bool) -> [DatasetKind; 4] {
        [
            DatasetKind::Synthetic { non_iid },
            DatasetKind::SimMnist { non_iid },
            DatasetKind::SimFashion { non_iid },
            DatasetKind::SimCifar { non_iid },
        ]
    }
}

/// Builder for a federated [`World`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    kind: DatasetKind,
    num_clients: usize,
    samples_per_client: usize,
    test_samples: usize,
    seed: u64,
    regularization: f64,
    duplicate_pair: Option<(usize, usize)>,
    /// Per-client feature-noise fractions (index = client id).
    feature_noise: Vec<f64>,
    /// Clients receiving label flips, with the flip fraction.
    label_noise: Vec<(usize, f64)>,
}

impl ExperimentBuilder {
    /// Starts a builder for the given task.
    pub fn new(kind: DatasetKind) -> Self {
        ExperimentBuilder {
            kind,
            num_clients: 10,
            samples_per_client: 80,
            test_samples: 200,
            seed: 0,
            regularization: 1e-3,
            duplicate_pair: None,
            feature_noise: Vec::new(),
            label_noise: Vec::new(),
        }
    }

    /// Synthetic-data shorthand.
    pub fn synthetic(non_iid: bool) -> Self {
        Self::new(DatasetKind::Synthetic { non_iid })
    }

    /// Simulated-MNIST shorthand.
    pub fn sim_mnist(non_iid: bool) -> Self {
        Self::new(DatasetKind::SimMnist { non_iid })
    }

    /// Number of clients `N`.
    pub fn num_clients(mut self, n: usize) -> Self {
        self.num_clients = n;
        self
    }

    /// Training examples per client.
    pub fn samples_per_client(mut self, n: usize) -> Self {
        self.samples_per_client = n;
        self
    }

    /// Server-side test examples.
    pub fn test_samples(mut self, n: usize) -> Self {
        self.test_samples = n;
        self
    }

    /// RNG seed for data generation and partitioning.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// L2 regularization of the model (strong-convexity modulus for
    /// logistic regression).
    pub fn regularization(mut self, reg: f64) -> Self {
        self.regularization = reg;
        self
    }

    /// Gives client `dst` an exact copy of client `src`'s data (the
    /// paper's fairness construction: clients 0 and 9).
    pub fn duplicate(mut self, src: usize, dst: usize) -> Self {
        self.duplicate_pair = Some((src, dst));
        self
    }

    /// Adds Gaussian feature noise to a fraction of each client's data
    /// (`fractions[i]` for client `i`) — the Fig. 6 construction.
    pub fn feature_noise(mut self, fractions: Vec<f64>) -> Self {
        self.feature_noise = fractions;
        self
    }

    /// Flips a fraction of labels for the given clients — the Fig. 7
    /// construction.
    pub fn label_noise(mut self, clients: Vec<(usize, f64)>) -> Self {
        self.label_noise = clients;
        self
    }

    /// Materializes the world.
    pub fn build(self) -> World {
        let (mut clients, test) = self.build_datasets();
        if let Some((src, dst)) = self.duplicate_pair {
            duplicate_client(&mut clients, src, dst);
        }
        for (i, &frac) in self.feature_noise.iter().enumerate() {
            if i < clients.len() && frac > 0.0 {
                // The paper adds Gaussian noise with the data's own scale.
                add_feature_noise(&mut clients[i], frac, 1.0, self.seed ^ (0xA5A5 + i as u64));
            }
        }
        for &(i, frac) in &self.label_noise {
            if i < clients.len() && frac > 0.0 {
                flip_labels(&mut clients[i], frac, self.seed ^ (0x5A5A + i as u64));
            }
        }
        let prototype = self.build_model(&test);
        World {
            clients,
            test,
            prototype,
            kind: self.kind,
        }
    }

    fn build_datasets(&self) -> (Vec<Dataset>, Dataset) {
        match self.kind {
            DatasetKind::Synthetic { non_iid } => {
                let base = if non_iid {
                    SyntheticConfig::non_iid()
                } else {
                    SyntheticConfig::iid()
                };
                let cfg = SyntheticConfig {
                    num_clients: self.num_clients,
                    samples_per_client: self.samples_per_client,
                    test_samples: self.test_samples,
                    seed: self.seed,
                    ..base
                };
                let fed = SyntheticFederated::generate(&cfg);
                (fed.client_data, fed.test_data)
            }
            DatasetKind::SimMnist { non_iid }
            | DatasetKind::SimFashion { non_iid }
            | DatasetKind::SimCifar { non_iid } => {
                let img_cfg = match self.kind {
                    DatasetKind::SimMnist { .. } => SimImageConfig::mnist(),
                    DatasetKind::SimFashion { .. } => SimImageConfig::fashion_mnist(),
                    _ => SimImageConfig::cifar10(),
                };
                let source = SimImageSource::new(img_cfg);
                let total = self.num_clients * self.samples_per_client;
                let pool = source.sample(total, self.seed);
                let clients = if non_iid {
                    partition_shards(&pool, self.num_clients, self.seed ^ 0x1234)
                } else {
                    partition_iid(&pool, self.num_clients, self.seed ^ 0x1234)
                };
                let test = source.sample(self.test_samples, self.seed ^ 0x9999);
                (clients, test)
            }
        }
    }

    fn build_model(&self, test: &Dataset) -> Box<dyn Model> {
        let dim = test.dim();
        let classes = test.num_classes();
        match self.kind {
            DatasetKind::Synthetic { .. } => Box::new(LogisticRegression::new(
                dim,
                classes,
                self.regularization,
                self.seed ^ 0x40de1,
            )),
            DatasetKind::SimMnist { .. } => Box::new(Mlp::new(
                &[dim, 32, classes],
                Activation::Relu,
                self.regularization,
                self.seed ^ 0x40de1,
            )),
            DatasetKind::SimFashion { .. } => {
                // 64 = 8×8 images, small CNN.
                Box::new(Cnn::new(
                    CnnConfig {
                        height: 8,
                        width: 8,
                        filters: 6,
                        num_classes: classes,
                        reg: self.regularization,
                    },
                    self.seed ^ 0x40de1,
                ))
            }
            DatasetKind::SimCifar { .. } => {
                // 144 = 12×12 images, larger CNN (the paper's VGG role).
                Box::new(Cnn::new(
                    CnnConfig {
                        height: 12,
                        width: 12,
                        filters: 10,
                        num_classes: classes,
                        reg: self.regularization,
                    },
                    self.seed ^ 0x40de1,
                ))
            }
        }
    }
}

/// A materialized federated task: client datasets, the server-held test
/// set, and the model prototype.
pub struct World {
    /// Per-client local datasets.
    pub clients: Vec<Dataset>,
    /// Server-held test set defining the utility function.
    pub test: Dataset,
    /// Model prototype (architecture + initial parameters).
    pub prototype: Box<dyn Model>,
    /// Which task this world is.
    pub kind: DatasetKind,
}

impl World {
    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Runs FedAvg and records the trace.
    pub fn train(&self, config: &FlConfig) -> TrainingTrace {
        train_federated(self.prototype.as_ref(), &self.clients, config)
    }

    /// Builds a utility oracle over a recorded trace.
    pub fn oracle<'a>(&'a self, trace: &'a TrainingTrace) -> UtilityOracle<'a> {
        UtilityOracle::new(trace, self.prototype.as_ref(), &self.test)
    }

    /// Accuracy of a parameter vector on the test set (harness helper).
    pub fn test_accuracy(&self, params: &[f64]) -> f64 {
        let mut m = self.prototype.clone_model();
        m.set_params(params);
        m.accuracy(&self.test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_world_builds_with_requested_shape() {
        let w = ExperimentBuilder::synthetic(false)
            .num_clients(5)
            .samples_per_client(30)
            .test_samples(40)
            .seed(3)
            .build();
        assert_eq!(w.num_clients(), 5);
        assert_eq!(w.clients[0].len(), 30);
        assert_eq!(w.test.len(), 40);
        assert_eq!(w.kind.name(), "synthetic");
    }

    #[test]
    fn image_worlds_build_for_all_kinds() {
        for kind in DatasetKind::suite(true).into_iter().skip(1) {
            let w = ExperimentBuilder::new(kind)
                .num_clients(4)
                .samples_per_client(20)
                .test_samples(30)
                .build();
            assert_eq!(w.num_clients(), 4);
            assert!(w.test.dim() > 0);
            assert_eq!(w.prototype.params().len(), w.prototype.num_params());
        }
    }

    #[test]
    fn duplicate_builder_copies_data() {
        let w = ExperimentBuilder::sim_mnist(true)
            .num_clients(5)
            .samples_per_client(20)
            .duplicate(0, 4)
            .build();
        assert_eq!(
            w.clients[0].features().as_slice(),
            w.clients[4].features().as_slice()
        );
    }

    #[test]
    fn feature_noise_applies_per_client() {
        let clean = ExperimentBuilder::synthetic(false)
            .num_clients(3)
            .samples_per_client(20)
            .build();
        let noisy = ExperimentBuilder::synthetic(false)
            .num_clients(3)
            .samples_per_client(20)
            .feature_noise(vec![0.0, 0.0, 1.0])
            .build();
        assert_eq!(
            clean.clients[0].features().as_slice(),
            noisy.clients[0].features().as_slice()
        );
        assert_ne!(
            clean.clients[2].features().as_slice(),
            noisy.clients[2].features().as_slice()
        );
    }

    #[test]
    fn label_noise_applies_to_listed_clients() {
        let clean = ExperimentBuilder::sim_mnist(false)
            .num_clients(3)
            .samples_per_client(30)
            .build();
        let noisy = ExperimentBuilder::sim_mnist(false)
            .num_clients(3)
            .samples_per_client(30)
            .label_noise(vec![(1, 0.5)])
            .build();
        assert_eq!(clean.clients[0].labels(), noisy.clients[0].labels());
        assert_ne!(clean.clients[1].labels(), noisy.clients[1].labels());
    }

    #[test]
    fn train_and_oracle_roundtrip() {
        let w = ExperimentBuilder::synthetic(true)
            .num_clients(4)
            .samples_per_client(25)
            .seed(5)
            .build();
        let trace = w.train(&FlConfig::new(3, 2, 0.2, 5));
        assert_eq!(trace.num_rounds(), 3);
        let oracle = w.oracle(&trace);
        let u = oracle.utility(0, fedval_fl::Subset::full(4));
        assert!(u.is_finite());
        let acc = w.test_accuracy(&trace.final_params);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn sweep_methods_runs_named_and_all() {
        let w = ExperimentBuilder::synthetic(true)
            .num_clients(4)
            .samples_per_client(25)
            .seed(9)
            .build();
        let trace = w.train(&FlConfig::new(3, 2, 0.2, 9));
        let oracle = w.oracle(&trace);
        let mut session = fedval_shapley::ValuationSession::builder()
            .rank(3)
            .permutations(20)
            .seed(9)
            .build();
        let named = sweep_methods(&mut session, &oracle, &["fedsv", "comfedsv"]);
        assert_eq!(named.len(), 2);
        assert_eq!(named[0].0, "fedsv");
        assert!(named.iter().all(|(_, r)| r.is_ok()));
        let all = sweep_methods(&mut session, &oracle, &[]);
        assert_eq!(all.len(), session.method_names().len());
    }

    #[test]
    fn sweep_methods_reports_isolated_per_method_costs() {
        let w = ExperimentBuilder::synthetic(true)
            .num_clients(4)
            .samples_per_client(25)
            .seed(13)
            .build();
        let trace = w.train(&FlConfig::new(3, 2, 0.2, 13));
        let oracle = w.oracle(&trace);
        let mut session = fedval_shapley::ValuationSession::builder()
            .rank(3)
            .permutations(20)
            .seed(13)
            .build();
        // Sweep order must not affect the reported cost: "fedsv" costs
        // the same whether it runs after "exact" (whose grid covers all
        // of fedsv's cells) or alone.
        let after_exact = sweep_methods(&mut session, &oracle, &["exact", "fedsv"]);
        let alone = sweep_methods(&mut session, &oracle, &["fedsv"]);
        let cost = |r: &[(String, Result<ValuationReport, ValuationError>)], name: &str| {
            r.iter()
                .find(|(n, _)| n == name)
                .unwrap()
                .1
                .as_ref()
                .unwrap()
                .diagnostics
                .cells_evaluated
        };
        assert!(cost(&after_exact, "fedsv") > 0);
        assert_eq!(cost(&after_exact, "fedsv"), cost(&alone, "fedsv"));
        // And the sweep restored the session's shared-cache mode.
        assert!(!session.isolated_runs());
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            ExperimentBuilder::sim_mnist(true)
                .num_clients(4)
                .samples_per_client(20)
                .seed(11)
                .build()
        };
        let a = build();
        let b = build();
        assert_eq!(
            a.clients[2].features().as_slice(),
            b.clients[2].features().as_slice()
        );
        assert_eq!(a.prototype.params(), b.prototype.params());
    }
}
