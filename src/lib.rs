//! # ComFedSV — fair data valuation for horizontal federated learning
//!
//! A from-scratch Rust reproduction of *"Improving Fairness for Data
//! Valuation in Horizontal Federated Learning"* (Fan et al., ICDE 2022):
//! federated training (FedAvg), the utility matrix and its low-rank theory,
//! matrix completion, and the completed federated Shapley value
//! (**ComFedSV**), together with the baseline **FedSV** and a ground-truth
//! valuation.
//!
//! ## Quickstart
//!
//! Every valuation method is a [`Valuator`](fedval_shapley::Valuator)
//! strategy driven through one [`ValuationSession`] harness:
//!
//! ```
//! use comfedsv::prelude::*;
//!
//! // 1. A federated world: 6 clients with heterogeneous synthetic data.
//! let world = ExperimentBuilder::synthetic(true)
//!     .num_clients(6)
//!     .samples_per_client(40)
//!     .seed(7)
//!     .build();
//!
//! // 2. Train with FedAvg: 5 rounds, 3 clients per round.
//! let trace = world.train(&FlConfig::new(5, 3, 0.3, 7));
//!
//! // 3. Value every client with ComFedSV (Algorithm 1).
//! let oracle = world.oracle(&trace);
//! let out = ComFedSv::exact(4).run(&oracle).unwrap();
//! assert_eq!(out.values.len(), 6);
//!
//! // 4. Or sweep the whole method matrix through one session.
//! let mut session = ValuationSession::builder().rank(4).seed(7).build();
//! for name in session.method_names() {
//!     let report = session.run(&name, &oracle).unwrap();
//!     assert_eq!(report.values.len(), 6, "{name}");
//! }
//! ```
//!
//! The trait layering is `Valuator` (strategy) over
//! [`UtilityOracle`](fedval_fl::UtilityOracle) (batched utility
//! evaluation) over [`MatrixCompleter`](fedval_mc::MatrixCompleter)
//! (pluggable completion solver); failures are typed
//! [`ValuationError`](fedval_shapley::ValuationError)s. See MIGRATION.md
//! for the mapping from the old free functions.
//!
//! The [`prelude`] re-exports the types needed by typical users; the
//! [`experiments`] module hosts the configured dataset/model pairings used
//! by the paper's evaluation and by this repo's examples and benchmark
//! harnesses.
//!
//! [`ValuationSession`]: fedval_shapley::ValuationSession

pub use fedval_data as data;
pub use fedval_fl as fl;
pub use fedval_linalg as linalg;
pub use fedval_mc as mc;
pub use fedval_metrics as metrics;
pub use fedval_models as models;
pub use fedval_shapley as shapley;

pub mod experiments;

/// The types most users need.
pub mod prelude {
    pub use crate::experiments::{DatasetKind, ExperimentBuilder, Scenario, World};
    pub use fedval_data::{Dataset, DirichletSkew, SyntheticConfig};
    pub use fedval_fl::{ClientBehavior, FlConfig, Subset, TrainingTrace, UtilityOracle};
    pub use fedval_mc::{AlsConfig, CompletionError, CompletionProblem, Factors, MatrixCompleter};
    pub use fedval_metrics::{detection_auc, precision_at_k, DetectionError};
    pub use fedval_models::{LearningRate, Model};
    pub use fedval_shapley::{
        ComFedSv, CompletionSolver, Diagnostics, EstimatorKind, ExactShapley, FedSv, FedSvConfig,
        GroupTesting, MethodDefaults, RunContext, Tmc, ValuationError, ValuationReport,
        ValuationSession, Valuator,
    };

    // Deprecated legacy surface (see MIGRATION.md).
    #[allow(deprecated)]
    pub use fedval_shapley::{
        comfedsv_pipeline, fedsv, fedsv_monte_carlo, ground_truth_valuation, ComFedSvConfig,
    };
}
